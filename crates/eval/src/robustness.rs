//! Robustness scenario axis: degradation curves under seeded trace
//! corruption.
//!
//! One base world is simulated once, then every corruption profile from
//! [`taxilight_trace::corrupt::Profile`] is applied across a severity
//! ladder and the full `preprocess → identify → monitor` pipeline is
//! re-run on the corrupted records. Per point we record identification
//! success, median cycle/red/change errors against the simulator's exact
//! ground truth, and the rate of spurious schedule-change detections a
//! [`ScheduleMonitor`] would raise against the clean baseline. Low
//! severities are gated per profile; higher severities only chart the
//! degradation curve.
//!
//! Everything derives from explicit `u64` seeds — the base world from
//! [`BASE_SEED`], each corruption pass from `(profile, severity)` — so
//! two runs of the same ladder serialise to byte-identical
//! `BENCH_robustness.json` reports.

use crate::report::{cdf_points, JsonWriter};
use std::collections::BTreeMap;
use taxilight_core::monitor::ScheduleMonitor;
use taxilight_core::pipeline::mean_sample_interval;
use taxilight_core::{
    compare, red_bin_error, ErrorSummary, Identifier, IdentifyConfig, IdentifyRequest,
    Preprocessor, ScheduleTruth,
};
use taxilight_sim::{custom_city, CityTopology, ScenarioSpec, ScheduleGenConfig};
use taxilight_trace::corrupt::{corrupt_records, Profile};
use taxilight_trace::time::Timestamp;
use taxilight_trace::TraceLog;

/// Master seed of the robustness base world (street grid, schedules,
/// fleet, demand — everything upstream of the corruption layer).
pub const BASE_SEED: u64 = 4801;
/// Fleet size of the base world.
pub const BASE_TAXIS: usize = 150;
/// Analysis-window length, seconds.
pub const WINDOW_S: u32 = 3600;
/// The full severity ladder `evalsuite --robustness` sweeps.
pub const FULL_SEVERITIES: [f64; 6] = [0.0, 0.15, 0.3, 0.5, 0.75, 1.0];
/// The fast ladder the test tier runs: the identity point plus the
/// gated low-severity point.
pub const FAST_SEVERITIES: [f64; 2] = [0.0, 0.15];
/// Severities at or below this value must satisfy the profile's gate.
pub const GATE_SEVERITY: f64 = 0.15;

/// CDF thresholds for the cycle-error curve, seconds.
const SECONDS_THRESHOLDS: [f64; 6] = [1.0, 2.0, 5.0, 10.0, 20.0, 40.0];

/// One `(profile, severity)` evaluation.
#[derive(Debug, Clone)]
pub struct RobustnessPoint {
    /// Corruption severity in `[0, 1]` (0 = pristine records).
    pub severity: f64,
    /// Identification attempts (= lights with truth at the instant).
    pub attempts: usize,
    /// Successful identifications.
    pub identified: usize,
    /// `identified / attempts` (0 when no attempts).
    pub success_rate: f64,
    /// Median absolute cycle-length error, seconds.
    pub median_cycle_err_s: f64,
    /// Median red-duration error, sample-interval bins.
    pub median_red_bins: f64,
    /// Median circular red-onset error, seconds.
    pub median_change_err_s: f64,
    /// Cycle-error CDF at [`SECONDS_THRESHOLDS`].
    pub cycle_err_cdf: Vec<(f64, f64)>,
    /// Fraction of comparable lights where a [`ScheduleMonitor`] fed the
    /// clean estimate then the corrupted estimate confirms a (spurious)
    /// schedule change.
    pub spurious_change_rate: f64,
}

/// Per-profile tolerance bounds, applied to every point with
/// `severity <= `[`GATE_SEVERITY`].
#[derive(Debug, Clone, Copy)]
pub struct RobustnessGate {
    /// Minimum identification success rate.
    pub min_success_rate: f64,
    /// Median cycle-error bound, seconds.
    pub max_median_cycle_err_s: f64,
    /// Median red-error bound, sample-interval bins.
    pub max_median_red_bins: f64,
    /// Spurious change-detection rate bound.
    pub max_spurious_change_rate: f64,
}

/// One corruption profile's degradation curve plus its gate verdict.
#[derive(Debug, Clone)]
pub struct ProfileCurve {
    /// Stable profile name (JSON key, replay handle).
    pub profile: String,
    /// Operator names active at full severity, composition order.
    pub ops: Vec<String>,
    /// One point per severity, ladder order.
    pub points: Vec<RobustnessPoint>,
    /// The gate low-severity points were judged against.
    pub gate: RobustnessGate,
    /// Gate verdict.
    pub pass: bool,
    /// Human-readable gate failures (empty when `pass`).
    pub failures: Vec<String>,
}

impl ProfileCurve {
    /// One-line console summary.
    pub fn summary_line(&self) -> String {
        let verdict = if self.pass { "PASS" } else { "FAIL" };
        let low = self.points.iter().find(|p| p.severity > 0.0).or(self.points.first());
        let high = self.points.last();
        match (low, high) {
            (Some(lo), Some(hi)) => format!(
                "{verdict}  {:<16} low s={:.2}: ok {:.2} cycle {:.2} s  |  high s={:.2}: ok {:.2} cycle {:.2} s",
                self.profile,
                lo.severity,
                lo.success_rate,
                lo.median_cycle_err_s,
                hi.severity,
                hi.success_rate,
                hi.median_cycle_err_s,
            ),
            _ => format!("{verdict}  {:<16} (no points)", self.profile),
        }
    }
}

/// The whole robustness sweep — what `evalsuite --robustness --json`
/// writes and CI archives as `BENCH_robustness.json`.
#[derive(Debug, Clone)]
pub struct RobustnessReport {
    /// Base-world seed.
    pub seed: u64,
    /// Base-world topology tag.
    pub topology: String,
    /// Base-world fleet size.
    pub taxis: usize,
    /// Analysis-window length, seconds.
    pub window_s: u32,
    /// Severity ladder the sweep ran.
    pub severities: Vec<f64>,
    /// Per-profile curves, [`Profile::ALL`] order.
    pub profiles: Vec<ProfileCurve>,
}

impl RobustnessReport {
    /// True when every profile passed its gate.
    pub fn all_pass(&self) -> bool {
        self.profiles.iter().all(|p| p.pass)
    }

    /// Deterministic JSON encoding (schema `taxilight-robustness/1`).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.raw("{");
        w.key("schema");
        w.string("taxilight-robustness/1");
        w.raw(",");
        w.key("seed");
        w.raw(&self.seed.to_string());
        w.raw(",");
        w.key("topology");
        w.string(&self.topology);
        w.raw(",");
        w.key("taxis");
        w.raw(&self.taxis.to_string());
        w.raw(",");
        w.key("window_s");
        w.raw(&self.window_s.to_string());
        w.raw(",");
        w.key("gate_severity");
        w.f64(GATE_SEVERITY);
        w.raw(",");
        w.key("severities");
        w.raw("[");
        for (i, &s) in self.severities.iter().enumerate() {
            if i > 0 {
                w.raw(",");
            }
            w.f64(s);
        }
        w.raw("],");
        w.key("pass");
        w.raw(if self.all_pass() { "true" } else { "false" });
        w.raw(",");
        w.key("profiles");
        w.raw("[");
        for (i, p) in self.profiles.iter().enumerate() {
            if i > 0 {
                w.raw(",");
            }
            write_profile(&mut w, p);
        }
        w.raw("]}");
        w.finish()
    }
}

fn write_profile(w: &mut JsonWriter, p: &ProfileCurve) {
    w.raw("{");
    w.key("profile");
    w.string(&p.profile);
    w.raw(",");
    w.key("ops");
    w.raw("[");
    for (i, op) in p.ops.iter().enumerate() {
        if i > 0 {
            w.raw(",");
        }
        w.string(op);
    }
    w.raw("],");
    w.key("gate");
    w.raw("{");
    w.key("min_success_rate");
    w.f64(p.gate.min_success_rate);
    w.raw(",");
    w.key("max_median_cycle_err_s");
    w.f64(p.gate.max_median_cycle_err_s);
    w.raw(",");
    w.key("max_median_red_bins");
    w.f64(p.gate.max_median_red_bins);
    w.raw(",");
    w.key("max_spurious_change_rate");
    w.f64(p.gate.max_spurious_change_rate);
    w.raw("},");
    w.key("pass");
    w.raw(if p.pass { "true" } else { "false" });
    w.raw(",");
    w.key("failures");
    w.raw("[");
    for (i, f) in p.failures.iter().enumerate() {
        if i > 0 {
            w.raw(",");
        }
        w.string(f);
    }
    w.raw("],");
    w.key("points");
    w.raw("[");
    for (i, pt) in p.points.iter().enumerate() {
        if i > 0 {
            w.raw(",");
        }
        write_point(w, pt);
    }
    w.raw("]}");
}

fn write_point(w: &mut JsonWriter, p: &RobustnessPoint) {
    w.raw("{");
    w.key("severity");
    w.f64(p.severity);
    w.raw(",");
    w.key("attempts");
    w.raw(&p.attempts.to_string());
    w.raw(",");
    w.key("identified");
    w.raw(&p.identified.to_string());
    w.raw(",");
    w.key("success_rate");
    w.f64(p.success_rate);
    w.raw(",");
    w.key("median_cycle_err_s");
    w.f64(p.median_cycle_err_s);
    w.raw(",");
    w.key("median_red_bins");
    w.f64(p.median_red_bins);
    w.raw(",");
    w.key("median_change_err_s");
    w.f64(p.median_change_err_s);
    w.raw(",");
    w.key("cycle_err_cdf");
    w.raw("[");
    for (i, &(t, frac)) in p.cycle_err_cdf.iter().enumerate() {
        if i > 0 {
            w.raw(",");
        }
        w.raw("[");
        w.f64(t);
        w.raw(",");
        w.f64(frac);
        w.raw("]");
    }
    w.raw("],");
    w.key("spurious_change_rate");
    w.f64(p.spurious_change_rate);
    w.raw("}");
}

/// The gate each profile's low-severity points must satisfy. Bounds sit
/// well above the clean baseline (cycle ≈ 1 s median, success ≈ 0.9 on
/// this world) but low enough that a regression in the hardened
/// consumers — dedup, plausibility rejection, typed degenerate-window
/// errors — trips them.
fn gate_for(profile: Profile) -> RobustnessGate {
    // The spurious-change bound is looser than intuition suggests: even
    // mild corruption flips harmonically ambiguous lights between cycle
    // multiples (60 ↔ 120 s), and each flip reads as a >25 s "change".
    // Observed rates at s = 0.15 sit near 0.25–0.38; the bound catches a
    // collapse, not the flips.
    let base = RobustnessGate {
        min_success_rate: 0.55,
        max_median_cycle_err_s: 8.0,
        max_median_red_bins: 3.0,
        max_spurious_change_rate: 0.40,
    };
    match profile {
        // Thinning to the slow half of the reporting mix costs samples;
        // success and red resolution degrade first.
        Profile::SparseReports => RobustnessGate {
            min_success_rate: 0.35,
            max_median_cycle_err_s: 10.0,
            max_median_red_bins: 4.0,
            ..base
        },
        // Whole-taxi dropout removes entire trajectories.
        Profile::TaxiDropout => RobustnessGate { min_success_rate: 0.45, ..base },
        // Per-taxi clock skew shifts stop events directly.
        Profile::ClockSkew => RobustnessGate {
            max_median_cycle_err_s: 10.0,
            max_median_red_bins: 4.0,
            max_spurious_change_rate: 0.50,
            ..base
        },
        _ => base,
    }
}

/// Seed of one corruption pass. Mixing the profile index and the raw
/// severity bits (not a ladder index) keeps a given `(profile,
/// severity)` point bit-identical whether it is reached from the fast or
/// the full ladder.
fn corruption_seed(profile_idx: usize, severity: f64) -> u64 {
    BASE_SEED
        ^ (profile_idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ severity.to_bits().rotate_left(17)
}

/// The base-world recipe: the paper-city grid with static schedules, so
/// ground truth is single-valued in every window and all degradation is
/// attributable to the corruption layer.
fn base_spec() -> ScenarioSpec {
    ScenarioSpec {
        seed: BASE_SEED,
        taxi_count: BASE_TAXIS,
        topology: CityTopology::Grid { dim: 6, spacing_m: 700.0 },
        schedule: ScheduleGenConfig {
            preprogrammed_fraction: 0.0,
            manual_fraction: 0.0,
            ..ScheduleGenConfig::default()
        },
        report_period_weights: None,
        start: Timestamp::civil(2014, 12, 5, 0, 0, 0),
    }
}

/// Runs the corruption sweep over `severities` (each in `[0, 1]`,
/// ascending) for every profile in [`Profile::ALL`].
pub fn run_robustness(severities: &[f64]) -> RobustnessReport {
    run_robustness_with_base(severities, &IdentifyConfig::default())
}

/// Like [`run_robustness`] but over a caller-supplied base configuration —
/// used to prove pipeline variants (e.g. the padded-FFT spectrum path)
/// hold the same corruption gates.
pub fn run_robustness_with_base(severities: &[f64], base: &IdentifyConfig) -> RobustnessReport {
    let spec = base_spec();
    let city = custom_city(&spec);
    let cfg = IdentifyConfig { window_s: WINDOW_S, ..base.clone() };
    let pre = Preprocessor::new(&city.net, cfg.clone());

    // Simulate once; every (profile, severity) point corrupts copies of
    // the same pristine record set.
    let start = spec.start.offset(9 * 3600 + 1800);
    let duration = WINDOW_S as u64 + 300;
    let (mut log, _) = city.run_from(start, duration);
    let base_records = log.records().to_vec();
    let at = start.offset(duration as i64);

    // Clean-baseline estimates anchor the spurious-change metric.
    let clean = evaluate(&base_records, &city, &pre, &cfg, at);

    let mut profiles = Vec::new();
    for (pi, profile) in Profile::ALL.into_iter().enumerate() {
        let mut points = Vec::new();
        for &severity in severities {
            let ops = profile.ops(severity);
            let records = corrupt_records(&base_records, &ops, corruption_seed(pi, severity));
            let eval = evaluate(&records, &city, &pre, &cfg, at);
            points.push(point_from(severity, &eval, &clean, at));
        }
        let gate = gate_for(profile);
        let failures = judge(&points, &gate);
        taxilight_obs::metrics::global()
            .gauge(
                "taxilight_robustness_gate_pass",
                &[("profile", profile.name())],
                taxilight_obs::metrics::MetricClass::Deterministic,
                "1 when the corruption profile passed its degradation gate",
            )
            .set(if failures.is_empty() { 1.0 } else { 0.0 });
        profiles.push(ProfileCurve {
            profile: profile.name().to_string(),
            ops: profile.ops(1.0).iter().map(|op| op.name().to_string()).collect(),
            points,
            gate,
            pass: failures.is_empty(),
            failures,
        });
    }

    RobustnessReport {
        seed: BASE_SEED,
        topology: "grid-6x700m".to_string(),
        taxis: BASE_TAXIS,
        window_s: WINDOW_S,
        severities: severities.to_vec(),
        profiles,
    }
}

/// Raw per-light outcome of one pipeline run on one record set.
struct Evaluation {
    attempts: usize,
    identified: usize,
    cycle_errs: Vec<f64>,
    red_bins: Vec<f64>,
    change_errs: Vec<f64>,
    /// Successful estimates, keyed by light id.
    est_cycles: BTreeMap<u32, f64>,
}

fn evaluate(
    records: &[taxilight_trace::TaxiRecord],
    city: &taxilight_sim::CityScenario,
    pre: &Preprocessor,
    cfg: &IdentifyConfig,
    at: Timestamp,
) -> Evaluation {
    let mut log = TraceLog::from_records(records.to_vec());
    let (parts, _) = pre.preprocess(&mut log);
    let mut eval = Evaluation {
        attempts: 0,
        identified: 0,
        cycle_errs: Vec::new(),
        red_bins: Vec::new(),
        change_errs: Vec::new(),
        est_cycles: BTreeMap::new(),
    };
    let engine = Identifier::new(&city.net, cfg.clone()).expect("robustness config is valid");
    for (light, result) in engine.run(&parts, &IdentifyRequest::all(at)).results {
        let plan = city.signals.plan(light, at);
        let truth = ScheduleTruth {
            cycle_s: plan.cycle_s as f64,
            red_s: plan.red_s as f64,
            red_start_mod_cycle_s: plan.offset_s as f64,
        };
        eval.attempts += 1;
        if let Ok(est) = result {
            let errors = compare(&est, &truth);
            let interval = mean_sample_interval(parts.observations(light));
            eval.identified += 1;
            eval.cycle_errs.push(errors.cycle_err_s);
            if interval > 0.0 {
                eval.red_bins.push(red_bin_error(errors.red_err_s, interval));
            }
            eval.change_errs.push(errors.change_err_s);
            eval.est_cycles.insert(light.0, est.cycle_s);
        }
    }
    eval
}

fn point_from(
    severity: f64,
    eval: &Evaluation,
    clean: &Evaluation,
    at: Timestamp,
) -> RobustnessPoint {
    // A monitor fed the clean estimate then the corrupted estimate, each
    // held for six monitoring intervals: a confirmed change event means
    // the corruption alone would trip a Sec.-VII schedule-change alarm.
    let mut compared = 0usize;
    let mut spurious = 0usize;
    for (light, &clean_cycle) in &clean.est_cycles {
        let Some(&corrupt_cycle) = eval.est_cycles.get(light) else {
            continue;
        };
        compared += 1;
        let mut monitor = ScheduleMonitor::new(600);
        let mut t = at;
        for _ in 0..6 {
            monitor.push(t, Some(clean_cycle));
            t = t.offset(600);
        }
        for _ in 0..6 {
            monitor.push(t, Some(corrupt_cycle));
            t = t.offset(600);
        }
        if !monitor.detect_changes(25.0, 2).is_empty() {
            spurious += 1;
        }
    }
    RobustnessPoint {
        severity,
        attempts: eval.attempts,
        identified: eval.identified,
        success_rate: if eval.attempts == 0 {
            0.0
        } else {
            eval.identified as f64 / eval.attempts as f64
        },
        median_cycle_err_s: ErrorSummary::of(&eval.cycle_errs).median,
        median_red_bins: ErrorSummary::of(&eval.red_bins).median,
        median_change_err_s: ErrorSummary::of(&eval.change_errs).median,
        cycle_err_cdf: cdf_points(&eval.cycle_errs, &SECONDS_THRESHOLDS),
        spurious_change_rate: if compared == 0 { 0.0 } else { spurious as f64 / compared as f64 },
    }
}

fn judge(points: &[RobustnessPoint], gate: &RobustnessGate) -> Vec<String> {
    let mut failures = Vec::new();
    for p in points.iter().filter(|p| p.severity <= GATE_SEVERITY + 1e-12) {
        if p.success_rate < gate.min_success_rate {
            failures.push(format!(
                "s={:.2}: success rate {:.3} < {:.3}",
                p.severity, p.success_rate, gate.min_success_rate
            ));
        }
        if p.median_cycle_err_s > gate.max_median_cycle_err_s {
            failures.push(format!(
                "s={:.2}: median cycle error {:.2} s > {:.2} s",
                p.severity, p.median_cycle_err_s, gate.max_median_cycle_err_s
            ));
        }
        if p.median_red_bins > gate.max_median_red_bins {
            failures.push(format!(
                "s={:.2}: median red error {:.2} bins > {:.2} bins",
                p.severity, p.median_red_bins, gate.max_median_red_bins
            ));
        }
        if p.spurious_change_rate > gate.max_spurious_change_rate {
            failures.push(format!(
                "s={:.2}: spurious change rate {:.3} > {:.3}",
                p.severity, p.spurious_change_rate, gate.max_spurious_change_rate
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_seeds_are_distinct_and_ladder_independent() {
        let mut seen = std::collections::BTreeSet::new();
        for pi in 0..Profile::ALL.len() {
            for s in FULL_SEVERITIES {
                assert!(seen.insert(corruption_seed(pi, s)), "seed collision at ({pi}, {s})");
            }
        }
        // Same (profile, severity) → same seed regardless of which
        // ladder contains it.
        assert_eq!(corruption_seed(3, 0.15), corruption_seed(3, FAST_SEVERITIES[1]));
    }

    #[test]
    fn json_encoding_is_deterministic_and_wellformed() {
        let report = RobustnessReport {
            seed: 1,
            topology: "grid-2x100m".into(),
            taxis: 10,
            window_s: 600,
            severities: vec![0.0, 0.5],
            profiles: vec![ProfileCurve {
                profile: "gps_noise".into(),
                ops: vec!["gps_noise".into(), "heading_noise".into()],
                points: vec![RobustnessPoint {
                    severity: 0.5,
                    attempts: 4,
                    identified: 3,
                    success_rate: 0.75,
                    median_cycle_err_s: 2.0,
                    median_red_bins: 1.0,
                    median_change_err_s: 10.0,
                    cycle_err_cdf: vec![(1.0, 0.25), (5.0, 1.0)],
                    spurious_change_rate: 0.0,
                }],
                gate: gate_for(Profile::GpsNoise),
                pass: true,
                failures: vec![],
            }],
        };
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"schema\":\"taxilight-robustness/1\""));
        assert!(a.contains("\"profile\":\"gps_noise\""));
        assert!(a.contains("\"severity\":0.5"));
        let balance = |open: char, close: char| {
            a.chars().filter(|&c| c == open).count() == a.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'));
    }

    #[test]
    fn judge_flags_only_low_severity_points() {
        let gate = RobustnessGate {
            min_success_rate: 0.5,
            max_median_cycle_err_s: 5.0,
            max_median_red_bins: 2.0,
            max_spurious_change_rate: 0.1,
        };
        let mk = |severity: f64, success: f64| RobustnessPoint {
            severity,
            attempts: 10,
            identified: (success * 10.0) as usize,
            success_rate: success,
            median_cycle_err_s: 1.0,
            median_red_bins: 0.5,
            median_change_err_s: 5.0,
            cycle_err_cdf: vec![],
            spurious_change_rate: 0.0,
        };
        // High-severity collapse is charted, not gated.
        assert!(judge(&[mk(0.0, 0.9), mk(0.15, 0.8), mk(1.0, 0.0)], &gate).is_empty());
        // The same collapse at gate severity fails.
        let failures = judge(&[mk(0.15, 0.0)], &gate);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("success rate"));
    }
}
