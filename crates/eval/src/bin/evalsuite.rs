//! The accuracy-regression driver.
//!
//! ```text
//! cargo run --release -p taxilight-eval --bin evalsuite -- --json BENCH_accuracy.json
//! cargo run --release -p taxilight-eval --bin evalsuite -- --slow --json out.json
//! cargo run --release -p taxilight-eval --bin evalsuite -- --scenario grid-static-dense
//! cargo run --release -p taxilight-eval --bin evalsuite -- --robustness --json BENCH_robustness.json
//! ```
//!
//! Prints one verdict line per scenario, optionally writes the
//! machine-readable JSON report, and exits non-zero when any gate fails —
//! so CI can archive the report *and* gate on it with one invocation.
//! `--robustness` swaps the conformance matrix for the seeded
//! fault-injection sweep (corruption profiles × severity ladder), and
//! `--padded-fft` reruns either tier with the power-of-two padded FFT
//! spectrum path — the gates must hold unchanged on both paths.

use std::sync::Arc;

use taxilight_core::{IdentifyConfig, SpectrumPath};
use taxilight_eval::robustness::{run_robustness_with_base, FAST_SEVERITIES, FULL_SEVERITIES};
use taxilight_eval::{extended_matrix, matrix, run_matrix_with_base};
use taxilight_obs::chrome::ChromeTraceWriter;

/// Sinks for `--trace-out` / `--metrics-out`, flushed after either mode.
struct ObsSinks {
    trace_out: Option<String>,
    metrics_out: Option<String>,
    tracer: Option<Arc<ChromeTraceWriter>>,
}

impl ObsSinks {
    /// Installs the trace subscriber when `--trace-out` was given.
    fn install(trace_out: Option<String>, metrics_out: Option<String>) -> Self {
        let tracer = trace_out.as_ref().map(|_| {
            let w = Arc::new(ChromeTraceWriter::new());
            taxilight_obs::set_subscriber(w.clone()).expect("first subscriber install");
            taxilight_obs::set_track_name(|| "main".to_string());
            w
        });
        ObsSinks { trace_out, metrics_out, tracer }
    }

    /// Writes the recorded trace and the metrics snapshot, if requested.
    fn flush(&self) {
        if let (Some(path), Some(w)) = (&self.trace_out, &self.tracer) {
            w.save(std::path::Path::new(path)).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("wrote {path} ({} trace events)", w.len());
        }
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, taxilight_obs::metrics::global().snapshot_json()).unwrap_or_else(
                |e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(2);
                },
            );
            eprintln!("wrote {path}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut slow = false;
    let mut fast = false;
    let mut robustness = false;
    let mut padded_fft = false;
    let mut only: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                json_path =
                    Some(args.get(i).cloned().unwrap_or_else(|| usage("--json needs a path")));
            }
            "--trace-out" => {
                i += 1;
                trace_out =
                    Some(args.get(i).cloned().unwrap_or_else(|| usage("--trace-out needs a path")));
            }
            "--metrics-out" => {
                i += 1;
                metrics_out = Some(
                    args.get(i).cloned().unwrap_or_else(|| usage("--metrics-out needs a path")),
                );
            }
            "--slow" => slow = true,
            "--fast" => fast = true,
            "--robustness" => robustness = true,
            "--padded-fft" => padded_fft = true,
            "--scenario" => {
                i += 1;
                only =
                    Some(args.get(i).cloned().unwrap_or_else(|| usage("--scenario needs a name")));
            }
            "--help" | "-h" => {
                usage("");
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }

    let base = base_config(padded_fft);
    let sinks = ObsSinks::install(trace_out, metrics_out);

    if robustness {
        run_robustness_mode(json_path, fast, &base, &sinks);
        return;
    }
    if fast {
        usage("--fast only applies to --robustness");
    }

    let mut scenarios = matrix();
    if slow {
        scenarios.extend(extended_matrix());
    }
    if let Some(name) = &only {
        scenarios.retain(|s| s.name == name);
        if scenarios.is_empty() {
            usage(&format!("no scenario named '{name}'"));
        }
    }

    eprintln!(
        "running {} scenario(s){}...",
        scenarios.len(),
        if padded_fft { " [padded-fft spectrum path]" } else { "" }
    );
    let report = run_matrix_with_base(&scenarios, &base);
    for s in &report.scenarios {
        println!("{}", s.summary_line());
        for f in &s.failures {
            println!("      gate: {f}");
        }
    }

    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }

    sinks.flush();

    if !report.all_pass() {
        std::process::exit(1);
    }
}

fn base_config(padded_fft: bool) -> IdentifyConfig {
    let spectrum = if padded_fft { SpectrumPath::PaddedPow2 } else { SpectrumPath::Exact };
    IdentifyConfig { spectrum, ..IdentifyConfig::default() }
}

fn run_robustness_mode(
    json_path: Option<String>,
    fast: bool,
    base: &IdentifyConfig,
    sinks: &ObsSinks,
) {
    let severities: &[f64] = if fast { &FAST_SEVERITIES } else { &FULL_SEVERITIES };
    eprintln!(
        "running robustness sweep: {} profiles x {} severities...",
        taxilight_trace::corrupt::Profile::ALL.len(),
        severities.len()
    );
    let report = run_robustness_with_base(severities, base);
    for p in &report.profiles {
        println!("{}", p.summary_line());
        for f in &p.failures {
            println!("      gate: {f}");
        }
    }

    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }

    sinks.flush();

    if !report.all_pass() {
        std::process::exit(1);
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: evalsuite [--json <path>] [--slow] [--scenario <name>] [--padded-fft] \
         [--robustness [--fast]] [--trace-out <path>] [--metrics-out <path>]\n\
         \n\
         --json <path>         write the machine-readable report\n\
         --slow                include the extended (slow-eval) matrix\n\
         --scenario <name>     run a single scenario by name\n\
         --padded-fft          use the power-of-two padded FFT spectrum path\n\
         --robustness          run the fault-injection sweep instead of the matrix\n\
         --fast                (with --robustness) gated low-severity ladder only\n\
         --trace-out <path>    record a Chrome trace-event JSON profile (Perfetto-loadable)\n\
         --metrics-out <path>  write the metrics-registry snapshot JSON"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
