//! Runs one scenario end to end: simulate → preprocess → identify →
//! compare against simulator ground truth (and, for switch scenarios,
//! monitor → detection latency). Everything downstream of the scenario's
//! seed is deterministic, so two runs of the same scenario produce
//! byte-identical reports.

use crate::report::{cdf_points, LightRow, ScenarioReport};
use crate::scenario::{Scenario, ScheduleFamily};
use taxilight_core::monitor::ScheduleMonitor;
use taxilight_core::pipeline::mean_sample_interval;
use taxilight_core::{
    compare, grade_counts, red_bin_error, ErrorSummary, Identifier, IdentifyConfig,
    IdentifyRequest, Preprocessor, ScheduleTruth,
};
use taxilight_sim::custom_city;

/// CDF thresholds for cycle/change errors, seconds (Fig. 14's x-axis).
const SECONDS_THRESHOLDS: [f64; 6] = [1.0, 2.0, 5.0, 10.0, 20.0, 40.0];
/// CDF thresholds for red errors, sample-interval bins (Fig. 13's unit).
const BIN_THRESHOLDS: [f64; 5] = [0.5, 1.0, 2.0, 3.0, 5.0];

/// Runs `scenario` and judges it against its gates.
pub fn run_scenario(scenario: &Scenario) -> ScenarioReport {
    run_scenario_with_base(scenario, &IdentifyConfig::default())
}

/// Like [`run_scenario`] but layering the scenario's window length over a
/// caller-supplied base configuration — the hook pipeline variants (e.g.
/// the padded-FFT spectrum path) use to prove they hold the same gates.
pub fn run_scenario_with_base(scenario: &Scenario, base: &IdentifyConfig) -> ScenarioReport {
    let mut report = match scenario.family {
        ScheduleFamily::PreProgrammedSwitch => run_change_detection(scenario, base),
        _ => run_identification(scenario, base),
    };
    report.judge();
    report
}

fn base_report(scenario: &Scenario) -> ScenarioReport {
    ScenarioReport {
        name: scenario.name.to_string(),
        seed: scenario.seed,
        topology: scenario.topology_tag(),
        family: scenario.family.tag().to_string(),
        taxis: scenario.taxis,
        attempts: 0,
        identified: 0,
        success_rate: 0.0,
        cycle_err_s: ErrorSummary::of(&[]),
        red_err_bins: ErrorSummary::of(&[]),
        change_err_s: ErrorSummary::of(&[]),
        cycle_err_cdf: Vec::new(),
        red_bins_cdf: Vec::new(),
        change_err_cdf: Vec::new(),
        quality_grades: [0; 4],
        detect_latency_s: None,
        detections: 0,
        gates: scenario.gates,
        pass: false,
        failures: Vec::new(),
        lights: Vec::new(),
    }
}

/// The Figs. 13–14 workload: analysis windows at off-peak instants, every
/// light identified each time and compared against the signal map.
fn run_identification(scenario: &Scenario, base: &IdentifyConfig) -> ScenarioReport {
    let city = custom_city(&scenario.spec());
    let cfg = IdentifyConfig { window_s: scenario.window_s, ..base.clone() };
    let pre = Preprocessor::new(&city.net, cfg.clone());
    let engine = Identifier::new(&city.net, cfg.clone()).expect("scenario config is valid");
    let mut report = base_report(scenario);

    let mut cycle_errs = Vec::new();
    let mut red_bins = Vec::new();
    let mut change_errs = Vec::new();

    for instant in 0..scenario.instants {
        // Off-peak windows (09:30 onward, strides co-prime with common
        // cycle lengths) keep ground truth single-valued even for the
        // mixed family's pre-programmed intersections.
        let day = scenario.spec().start;
        let start = day.offset(9 * 3600 + 1800 + (instant as i64) * 4271);
        let duration = scenario.window_s as u64 + 300;
        let (mut log, _) = city.run_from(start, duration);
        let (parts, _) = pre.preprocess(&mut log);
        let at = start.offset(duration as i64);

        let quality = taxilight_core::assess_all(&parts, start, at, &cfg);
        let grades = grade_counts(&quality);
        for (k, n) in grades.into_iter().enumerate() {
            report.quality_grades[k] += n;
        }

        for (light, result) in engine.run(&parts, &IdentifyRequest::all(at)).results {
            let plan = city.signals.plan(light, at);
            let truth = ScheduleTruth {
                cycle_s: plan.cycle_s as f64,
                red_s: plan.red_s as f64,
                red_start_mod_cycle_s: plan.offset_s as f64,
            };
            report.attempts += 1;
            let row = match result {
                Ok(est) => {
                    let errors = compare(&est, &truth);
                    let interval = mean_sample_interval(parts.observations(light));
                    let bins = (interval > 0.0).then(|| red_bin_error(errors.red_err_s, interval));
                    report.identified += 1;
                    cycle_errs.push(errors.cycle_err_s);
                    if let Some(b) = bins {
                        red_bins.push(b);
                    }
                    change_errs.push(errors.change_err_s);
                    LightRow {
                        light: light.0,
                        instant,
                        true_cycle_s: truth.cycle_s,
                        est_cycle_s: Some(est.cycle_s),
                        cycle_err_s: Some(errors.cycle_err_s),
                        red_err_s: Some(errors.red_err_s),
                        red_err_bins: bins,
                        change_err_s: Some(errors.change_err_s),
                        snr: est.snr,
                        samples: est.samples,
                    }
                }
                Err(_) => LightRow {
                    light: light.0,
                    instant,
                    true_cycle_s: truth.cycle_s,
                    est_cycle_s: None,
                    cycle_err_s: None,
                    red_err_s: None,
                    red_err_bins: None,
                    change_err_s: None,
                    snr: 0.0,
                    samples: 0,
                },
            };
            report.lights.push(row);
        }
    }

    report.success_rate =
        if report.attempts == 0 { 0.0 } else { report.identified as f64 / report.attempts as f64 };
    report.cycle_err_s = ErrorSummary::of(&cycle_errs);
    report.red_err_bins = ErrorSummary::of(&red_bins);
    report.change_err_s = ErrorSummary::of(&change_errs);
    report.cycle_err_cdf = cdf_points(&cycle_errs, &SECONDS_THRESHOLDS);
    report.red_bins_cdf = cdf_points(&red_bins, &BIN_THRESHOLDS);
    report.change_err_cdf = cdf_points(&change_errs, &SECONDS_THRESHOLDS);
    report
}

/// The Sec.-VII / Fig. 12 workload: simulate across the 07:00 programme
/// switch, re-identify on a monitoring cadence, and measure how long the
/// monitor takes to confirm the change on each busy light.
fn run_change_detection(scenario: &Scenario, base: &IdentifyConfig) -> ScenarioReport {
    let mut city = custom_city(&scenario.spec());
    // A uniformly active fleet: the workload measures the monitor, not
    // the pre-dawn activity dip.
    city.sim_config.hourly_activity = [1.0; 24];

    let cfg = IdentifyConfig { window_s: scenario.window_s, ..base.clone() };
    let pre = Preprocessor::new(&city.net, cfg.clone());
    let engine = Identifier::new(&city.net, cfg.clone()).expect("scenario config is valid");
    let mut report = base_report(scenario);

    // 06:00 → 09:00 spans the 07:00 off-peak→peak switch with warm-up.
    let day = scenario.spec().start;
    let sim_start = day.offset(6 * 3600);
    let switch_truth = day.offset(7 * 3600);
    let horizon = 3 * 3600i64;
    let (mut log, _) = city.run_from(sim_start, horizon as u64);
    let (parts, _) = pre.preprocess(&mut log);

    // Monitor the busiest lights — the ones a deployment would trust.
    let mut by_density: Vec<_> =
        parts.lights_with_data().into_iter().map(|l| (l, parts.observations(l).len())).collect();
    by_density.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));

    const MONITOR_INTERVAL_S: i64 = 600;
    let mut latencies = Vec::new();
    for &(light, samples) in by_density.iter().take(5) {
        let mut monitor = ScheduleMonitor::new(MONITOR_INTERVAL_S as u32);
        let mut t = sim_start.offset(cfg.window_s as i64);
        while t <= sim_start.offset(horizon) {
            let cycle = engine
                .run(&parts, &IdentifyRequest::one(t, light))
                .into_single()
                .ok()
                .map(|e| e.cycle_s);
            monitor.push(t, cycle);
            t = t.offset(MONITOR_INTERVAL_S);
        }
        report.attempts += 1;
        // The first confirmed increase at or after the switch (minus one
        // monitoring interval of timestamp slack) is the detection.
        let event = monitor.detect_changes(25.0, 2).into_iter().find(|e| {
            e.to_cycle_s > e.from_cycle_s && e.at.delta(switch_truth) >= -MONITOR_INTERVAL_S
        });
        let (latency, est_cycle) = match event {
            Some(e) => {
                report.detections += 1;
                report.identified += 1;
                latencies.push(e.at.delta(switch_truth) as f64);
                (Some(e.at.delta(switch_truth) as f64), Some(e.to_cycle_s))
            }
            None => (None, None),
        };
        let truth_plan = city.signals.plan(light, sim_start.offset(horizon));
        report.lights.push(LightRow {
            light: light.0,
            instant: 0,
            true_cycle_s: truth_plan.cycle_s as f64,
            est_cycle_s: est_cycle,
            cycle_err_s: est_cycle.map(|c| (c - truth_plan.cycle_s as f64).abs()),
            red_err_s: None,
            red_err_bins: None,
            // Reuse the change-error column for the per-light latency so
            // the JSON stays one schema across families.
            change_err_s: latency,
            snr: 0.0,
            samples,
        });
    }

    report.success_rate =
        if report.attempts == 0 { 0.0 } else { report.detections as f64 / report.attempts as f64 };
    if !latencies.is_empty() {
        report.detect_latency_s = Some(ErrorSummary::of(&latencies).median);
    }
    report
}
