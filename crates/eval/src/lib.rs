//! # taxilight-eval
//!
//! Deterministic conformance and accuracy-regression harness.
//!
//! A fixed matrix of seeded scenarios ([`scenario::matrix`], extended by
//! `--features slow-eval` / [`scenario::extended_matrix`]) sweeps the axes
//! the paper's evaluation varies — topology (grid/irregular), fleet size,
//! reporting-period mix, schedule family — and runs the full
//! `Preprocessor → Identifier → monitor` pipeline against the
//! simulator's exact ground truth. Results carry the Figs. 13–14 metrics
//! (cycle error, red error in sample-interval bins, change-point offset,
//! their CDFs) plus the Sec.-VII change-detection latency, and each
//! scenario is judged against explicit tolerance gates.
//!
//! Three entry points:
//!
//! * `cargo test -p taxilight-eval` — the conformance tier
//!   (`tests/conformance.rs`): one test per fast-matrix scenario, failing
//!   with the violated gate and the seed to replay.
//! * `cargo run --release -p taxilight-eval --bin evalsuite -- --json
//!   out.json` — the full suite as a machine-readable report (CI archives
//!   it as `BENCH_accuracy.json`).
//! * [`run_matrix`] — library API used by `taxilight-bench`.
//! * `evalsuite --robustness --json BENCH_robustness.json` — the seeded
//!   fault-injection sweep ([`robustness`]): every corruption profile ×
//!   severity ladder, gated at low severities.
//!
//! Every scenario is reproducible bit-for-bit from its `u64` seed: the
//! seed derives the street geometry, the schedules, the monitored set,
//! the demand field and the GPS noise, and the pipeline itself is
//! deterministic (seeded PRNGs, order-preserving parallelism, sorted
//! iteration).

#![warn(missing_docs)]

pub mod report;
pub mod robustness;
pub mod runner;
pub mod scenario;

pub use report::{AccuracyReport, JsonWriter, ScenarioReport};
pub use robustness::{
    run_robustness, run_robustness_with_base, ProfileCurve, RobustnessPoint, RobustnessReport,
};
pub use runner::{run_scenario, run_scenario_with_base};
pub use scenario::{extended_matrix, matrix, Gates, Scenario, ScheduleFamily};

/// Runs a list of scenarios into one report.
pub fn run_matrix(scenarios: &[Scenario]) -> AccuracyReport {
    AccuracyReport { scenarios: scenarios.iter().map(run_scenario).collect() }
}

/// Like [`run_matrix`] but with a caller-supplied base
/// [`taxilight_core::IdentifyConfig`] layered under every scenario.
pub fn run_matrix_with_base(
    scenarios: &[Scenario],
    base: &taxilight_core::IdentifyConfig,
) -> AccuracyReport {
    AccuracyReport {
        scenarios: scenarios.iter().map(|s| run_scenario_with_base(s, base)).collect(),
    }
}
