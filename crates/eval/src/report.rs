//! Machine-readable accuracy reports and their deterministic JSON
//! encoding.
//!
//! The encoder is hand-rolled (the workspace is offline, so no serde):
//! fields are written in a fixed order and floats use Rust's shortest
//! round-trip formatting, so the same report always serialises to the
//! same bytes — the property the determinism conformance test pins.

use crate::scenario::Gates;
use taxilight_core::ErrorSummary;

/// One light's evaluation at one instant (an identification scenario row).
#[derive(Debug, Clone)]
pub struct LightRow {
    /// Light id.
    pub light: u32,
    /// Instant index inside the scenario.
    pub instant: usize,
    /// Ground-truth cycle, seconds.
    pub true_cycle_s: f64,
    /// Estimated cycle, seconds (`None` when identification failed).
    pub est_cycle_s: Option<f64>,
    /// Absolute cycle error, seconds.
    pub cycle_err_s: Option<f64>,
    /// Red-duration error, seconds.
    pub red_err_s: Option<f64>,
    /// Red-duration error in sample-interval bins.
    pub red_err_bins: Option<f64>,
    /// Circular red-onset error, seconds.
    pub change_err_s: Option<f64>,
    /// Periodogram confidence.
    pub snr: f64,
    /// Observations consumed.
    pub samples: usize,
}

/// Everything measured for one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Master seed (replay handle).
    pub seed: u64,
    /// Topology tag.
    pub topology: String,
    /// Schedule-family tag.
    pub family: String,
    /// Fleet size.
    pub taxis: usize,
    /// Identification attempts (lights × instants).
    pub attempts: usize,
    /// Successful identifications.
    pub identified: usize,
    /// `identified / attempts` (0 when no attempts).
    pub success_rate: f64,
    /// Cycle-length error statistics, seconds.
    pub cycle_err_s: ErrorSummary,
    /// Red-duration error statistics, sample-interval bins.
    pub red_err_bins: ErrorSummary,
    /// Change-point circular error statistics, seconds.
    pub change_err_s: ErrorSummary,
    /// Cycle-error CDF: `(threshold_s, fraction ≤ threshold)`.
    pub cycle_err_cdf: Vec<(f64, f64)>,
    /// Red-bin-error CDF: `(threshold_bins, fraction ≤ threshold)`.
    pub red_bins_cdf: Vec<(f64, f64)>,
    /// Change-error CDF: `(threshold_s, fraction ≤ threshold)`.
    pub change_err_cdf: Vec<(f64, f64)>,
    /// Lights per quality grade `[starved, sparse, adequate, rich]`.
    pub quality_grades: [usize; 4],
    /// Median programme-switch detection latency, seconds (switch
    /// scenarios only).
    pub detect_latency_s: Option<f64>,
    /// Lights that detected the switch (switch scenarios only).
    pub detections: usize,
    /// The gates this run was judged against.
    pub gates: Gates,
    /// Gate verdict.
    pub pass: bool,
    /// Human-readable gate failures (empty when `pass`).
    pub failures: Vec<String>,
    /// Per-(light, instant) rows.
    pub lights: Vec<LightRow>,
}

impl ScenarioReport {
    /// Judges `self` against its gates, filling `pass`/`failures`.
    pub fn judge(&mut self) {
        let g = self.gates;
        let mut failures = Vec::new();
        if self.success_rate < g.min_success_rate {
            failures
                .push(format!("success rate {:.3} < {:.3}", self.success_rate, g.min_success_rate));
        }
        if g.median_cycle_err_s.is_finite() && self.cycle_err_s.median > g.median_cycle_err_s {
            failures.push(format!(
                "median cycle error {:.2} s > {:.2} s",
                self.cycle_err_s.median, g.median_cycle_err_s
            ));
        }
        if g.median_red_bins.is_finite() && self.red_err_bins.median > g.median_red_bins {
            failures.push(format!(
                "median red error {:.2} bins > {:.2} bins",
                self.red_err_bins.median, g.median_red_bins
            ));
        }
        if g.median_change_err_s.is_finite() && self.change_err_s.median > g.median_change_err_s {
            failures.push(format!(
                "median change error {:.2} s > {:.2} s",
                self.change_err_s.median, g.median_change_err_s
            ));
        }
        if let Some(max_latency) = g.max_detect_latency_s {
            match self.detect_latency_s {
                None => failures.push("programme switch not detected by any light".into()),
                Some(lat) if lat > max_latency => {
                    failures.push(format!("detection latency {lat:.0} s > {max_latency:.0} s"));
                }
                Some(_) => {}
            }
        }
        self.pass = failures.is_empty();
        self.failures = failures;

        // Mirror the verdict and the gated medians into the metrics
        // registry, one labelled gauge set per scenario. Everything here
        // is seed-fixed, so the snapshot's deterministic section carries
        // the full accuracy picture.
        let reg = taxilight_obs::metrics::global();
        let det = taxilight_obs::metrics::MetricClass::Deterministic;
        let labels: &[(&str, &str)] = &[("scenario", self.name.as_str())];
        reg.gauge("taxilight_eval_gate_pass", labels, det, "1 when the scenario passed its gates")
            .set(if self.pass { 1.0 } else { 0.0 });
        reg.gauge("taxilight_eval_success_rate", labels, det, "identified / attempts")
            .set(self.success_rate);
        reg.gauge("taxilight_eval_median_cycle_err_s", labels, det, "Median cycle-length error")
            .set(self.cycle_err_s.median);
        reg.gauge("taxilight_eval_median_red_err_bins", labels, det, "Median red-duration error")
            .set(self.red_err_bins.median);
        reg.gauge("taxilight_eval_median_change_err_s", labels, det, "Median change-point error")
            .set(self.change_err_s.median);
    }

    /// One-line console summary.
    pub fn summary_line(&self) -> String {
        let verdict = if self.pass { "PASS" } else { "FAIL" };
        match self.detect_latency_s {
            Some(lat) => format!(
                "{verdict}  {:<24} seed {:<4} {}  detections {} latency {:.0} s",
                self.name, self.seed, self.family, self.detections, lat
            ),
            None => format!(
                "{verdict}  {:<24} seed {:<4} {}  ok {}/{} cycle med {:.2} s  red med {:.2} bins  change med {:.1} s",
                self.name,
                self.seed,
                self.family,
                self.identified,
                self.attempts,
                self.cycle_err_s.median,
                self.red_err_bins.median,
                self.change_err_s.median
            ),
        }
    }
}

/// The whole suite's report — what `evalsuite --json` writes and CI
/// archives as `BENCH_accuracy.json`.
#[derive(Debug, Clone, Default)]
pub struct AccuracyReport {
    /// Per-scenario reports, matrix order.
    pub scenarios: Vec<ScenarioReport>,
}

impl AccuracyReport {
    /// True when every scenario passed its gates.
    pub fn all_pass(&self) -> bool {
        self.scenarios.iter().all(|s| s.pass)
    }

    /// Deterministic JSON encoding.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.raw("{");
        w.key("schema");
        w.string("taxilight-eval/1");
        w.raw(",");
        w.key("pass");
        w.raw(if self.all_pass() { "true" } else { "false" });
        w.raw(",");
        w.key("scenarios");
        w.raw("[");
        for (i, s) in self.scenarios.iter().enumerate() {
            if i > 0 {
                w.raw(",");
            }
            write_scenario(&mut w, s);
        }
        w.raw("]}");
        w.finish()
    }
}

fn write_scenario(w: &mut JsonWriter, s: &ScenarioReport) {
    w.raw("{");
    w.key("name");
    w.string(&s.name);
    w.raw(",");
    w.key("seed");
    w.raw(&s.seed.to_string());
    w.raw(",");
    w.key("topology");
    w.string(&s.topology);
    w.raw(",");
    w.key("family");
    w.string(&s.family);
    w.raw(",");
    w.key("taxis");
    w.raw(&s.taxis.to_string());
    w.raw(",");
    w.key("attempts");
    w.raw(&s.attempts.to_string());
    w.raw(",");
    w.key("identified");
    w.raw(&s.identified.to_string());
    w.raw(",");
    w.key("success_rate");
    w.f64(s.success_rate);
    w.raw(",");
    w.key("cycle_err_s");
    write_summary(w, &s.cycle_err_s);
    w.raw(",");
    w.key("red_err_bins");
    write_summary(w, &s.red_err_bins);
    w.raw(",");
    w.key("change_err_s");
    write_summary(w, &s.change_err_s);
    w.raw(",");
    w.key("cycle_err_cdf");
    write_cdf(w, &s.cycle_err_cdf);
    w.raw(",");
    w.key("red_bins_cdf");
    write_cdf(w, &s.red_bins_cdf);
    w.raw(",");
    w.key("change_err_cdf");
    write_cdf(w, &s.change_err_cdf);
    w.raw(",");
    w.key("quality_grades");
    w.raw(&format!(
        "{{\"starved\":{},\"sparse\":{},\"adequate\":{},\"rich\":{}}}",
        s.quality_grades[0], s.quality_grades[1], s.quality_grades[2], s.quality_grades[3]
    ));
    w.raw(",");
    w.key("detect_latency_s");
    w.opt_f64(s.detect_latency_s);
    w.raw(",");
    w.key("detections");
    w.raw(&s.detections.to_string());
    w.raw(",");
    w.key("gates");
    write_gates(w, &s.gates);
    w.raw(",");
    w.key("pass");
    w.raw(if s.pass { "true" } else { "false" });
    w.raw(",");
    w.key("failures");
    w.raw("[");
    for (i, f) in s.failures.iter().enumerate() {
        if i > 0 {
            w.raw(",");
        }
        w.string(f);
    }
    w.raw("],");
    w.key("lights");
    w.raw("[");
    for (i, row) in s.lights.iter().enumerate() {
        if i > 0 {
            w.raw(",");
        }
        write_light(w, row);
    }
    w.raw("]}");
}

fn write_summary(w: &mut JsonWriter, s: &ErrorSummary) {
    w.raw("{");
    w.key("count");
    w.raw(&s.count.to_string());
    w.raw(",");
    w.key("mean");
    w.f64(s.mean);
    w.raw(",");
    w.key("median");
    w.f64(s.median);
    w.raw(",");
    w.key("p90");
    w.f64(s.p90);
    w.raw(",");
    w.key("max");
    w.f64(s.max);
    w.raw("}");
}

fn write_cdf(w: &mut JsonWriter, cdf: &[(f64, f64)]) {
    w.raw("[");
    for (i, &(t, frac)) in cdf.iter().enumerate() {
        if i > 0 {
            w.raw(",");
        }
        w.raw("[");
        w.f64(t);
        w.raw(",");
        w.f64(frac);
        w.raw("]");
    }
    w.raw("]");
}

fn write_gates(w: &mut JsonWriter, g: &Gates) {
    w.raw("{");
    w.key("min_success_rate");
    w.f64(g.min_success_rate);
    w.raw(",");
    w.key("median_cycle_err_s");
    w.finite_or_null(g.median_cycle_err_s);
    w.raw(",");
    w.key("median_red_bins");
    w.finite_or_null(g.median_red_bins);
    w.raw(",");
    w.key("median_change_err_s");
    w.finite_or_null(g.median_change_err_s);
    w.raw(",");
    w.key("max_detect_latency_s");
    w.opt_f64(g.max_detect_latency_s);
    w.raw("}");
}

fn write_light(w: &mut JsonWriter, r: &LightRow) {
    w.raw("{");
    w.key("light");
    w.raw(&r.light.to_string());
    w.raw(",");
    w.key("instant");
    w.raw(&r.instant.to_string());
    w.raw(",");
    w.key("true_cycle_s");
    w.f64(r.true_cycle_s);
    w.raw(",");
    w.key("est_cycle_s");
    w.opt_f64(r.est_cycle_s);
    w.raw(",");
    w.key("cycle_err_s");
    w.opt_f64(r.cycle_err_s);
    w.raw(",");
    w.key("red_err_s");
    w.opt_f64(r.red_err_s);
    w.raw(",");
    w.key("red_err_bins");
    w.opt_f64(r.red_err_bins);
    w.raw(",");
    w.key("change_err_s");
    w.opt_f64(r.change_err_s);
    w.raw(",");
    w.key("snr");
    w.f64(r.snr);
    w.raw(",");
    w.key("samples");
    w.raw(&r.samples.to_string());
    w.raw("}");
}

/// Minimal JSON emitter with RFC 8259 string escaping and shortest
/// round-trip float formatting. Shared by every report in this crate
/// (accuracy and robustness) and by `taxilight-bench`'s throughput
/// report, which is what keeps their byte-level determinism contracts
/// identical.
pub struct JsonWriter {
    out: String,
}

impl Default for JsonWriter {
    fn default() -> Self {
        JsonWriter::new()
    }
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        JsonWriter { out: String::with_capacity(4096) }
    }

    /// Appends raw, pre-encoded JSON text (structure, numbers, bools).
    pub fn raw(&mut self, s: &str) {
        self.out.push_str(s);
    }

    /// Appends an escaped object key plus the `:` separator.
    pub fn key(&mut self, k: &str) {
        self.string(k);
        self.out.push(':');
    }

    /// Appends an RFC 8259-escaped string literal.
    pub fn string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Appends a finite float in shortest round-trip form (integral
    /// values keep a trailing `.0`). Panics on non-finite input.
    pub fn f64(&mut self, v: f64) {
        assert!(v.is_finite(), "non-finite value in JSON report");
        // Shortest round-trip Display; integral values still get a dot so
        // downstream type-sniffers always see a float.
        let s = v.to_string();
        self.out.push_str(&s);
        if !s.contains('.') && !s.contains('e') {
            self.out.push_str(".0");
        }
    }

    /// Appends `Some` as a float, `None` as `null`.
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => self.f64(x),
            None => self.raw("null"),
        }
    }

    /// Appends the value, or `null` when it is not finite.
    pub fn finite_or_null(&mut self, v: f64) {
        if v.is_finite() {
            self.f64(v);
        } else {
            self.raw("null");
        }
    }

    /// Consumes the writer, returning the accumulated JSON text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Builds a CDF over `errs` at `thresholds` (fraction at or below each).
pub fn cdf_points(errs: &[f64], thresholds: &[f64]) -> Vec<(f64, f64)> {
    use taxilight_signal::histogram::Ecdf;
    if errs.is_empty() {
        return thresholds.iter().map(|&t| (t, 0.0)).collect();
    }
    let ecdf = Ecdf::new(errs);
    thresholds.iter().map(|&t| (t, ecdf.fraction_at_or_below(t))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ScenarioReport {
        ScenarioReport {
            name: "unit".into(),
            seed: 7,
            topology: "grid-2x100m".into(),
            family: "static".into(),
            taxis: 10,
            attempts: 4,
            identified: 3,
            success_rate: 0.75,
            cycle_err_s: ErrorSummary::of(&[1.0, 2.0, 3.0]),
            red_err_bins: ErrorSummary::of(&[0.5, 1.5, 2.5]),
            change_err_s: ErrorSummary::of(&[4.0, 5.0, 6.0]),
            cycle_err_cdf: cdf_points(&[1.0, 2.0, 3.0], &[2.0, 10.0]),
            red_bins_cdf: vec![],
            change_err_cdf: vec![],
            quality_grades: [1, 0, 2, 1],
            detect_latency_s: None,
            detections: 0,
            gates: Gates {
                min_success_rate: 0.5,
                median_cycle_err_s: 5.0,
                median_red_bins: 2.0,
                median_change_err_s: 20.0,
                max_detect_latency_s: None,
            },
            pass: false,
            failures: vec![],
            lights: vec![LightRow {
                light: 3,
                instant: 0,
                true_cycle_s: 98.0,
                est_cycle_s: Some(97.0),
                cycle_err_s: Some(1.0),
                red_err_s: Some(2.0),
                red_err_bins: Some(0.1),
                change_err_s: Some(4.0),
                snr: 5.5,
                samples: 120,
            }],
        }
    }

    #[test]
    fn judge_passes_within_gates() {
        let mut r = sample_report();
        r.judge();
        assert!(r.pass, "{:?}", r.failures);
        assert!(r.failures.is_empty());
    }

    #[test]
    fn judge_fails_and_names_the_gate() {
        let mut r = sample_report();
        r.gates.median_cycle_err_s = 1.0;
        r.judge();
        assert!(!r.pass);
        assert!(r.failures[0].contains("median cycle error"), "{:?}", r.failures);
        // Latency gate: required but absent.
        let mut r = sample_report();
        r.gates.max_detect_latency_s = Some(100.0);
        r.judge();
        assert!(r.failures.iter().any(|f| f.contains("not detected")), "{:?}", r.failures);
    }

    #[test]
    fn json_is_deterministic_and_wellformed() {
        let mut r = sample_report();
        r.judge();
        let report = AccuracyReport { scenarios: vec![r] };
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"schema\":\"taxilight-eval/1\""));
        assert!(a.contains("\"name\":\"unit\""));
        assert!(a.contains("\"success_rate\":0.75"));
        // Integral floats carry a decimal point.
        assert!(a.contains("\"true_cycle_s\":98.0"));
        // Balanced braces/brackets (cheap well-formedness check).
        let balance = |open: char, close: char| {
            a.chars().filter(|&c| c == open).count() == a.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'));
    }

    #[test]
    fn json_escapes_strings() {
        let mut r = sample_report();
        r.failures = vec!["quote \" backslash \\ newline \n".into()];
        r.pass = false;
        let json = AccuracyReport { scenarios: vec![r] }.to_json();
        assert!(json.contains("quote \\\" backslash \\\\ newline \\n"));
    }

    #[test]
    fn cdf_points_fraction_at_thresholds() {
        let pts = cdf_points(&[1.0, 3.0, 100.0], &[2.0, 10.0]);
        assert_eq!(pts.len(), 2);
        assert!((pts[0].1 - 1.0 / 3.0).abs() < 1e-9);
        assert!((pts[1].1 - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(cdf_points(&[], &[1.0]), vec![(1.0, 0.0)]);
    }
}
