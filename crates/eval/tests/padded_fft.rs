//! The acceptance tier for the padded power-of-two FFT spectrum path:
//! switching `IdentifyConfig::spectrum` to [`SpectrumPath::PaddedPow2`]
//! must leave every accuracy and robustness gate passing, exactly as the
//! exact-length (Bluestein) default does. A fast scenario and the gated
//! corruption severity run in the default tier; the whole fast matrix
//! rides behind `--features slow-eval`.
//!
//! Replay a failure with:
//!
//! ```text
//! cargo run --release -p taxilight-eval --bin evalsuite -- --padded-fft --scenario <name>
//! ```

use taxilight_core::{IdentifyConfig, SpectrumPath};
use taxilight_eval::robustness::{run_robustness_with_base, GATE_SEVERITY};
use taxilight_eval::{matrix, run_scenario_with_base, Scenario};

fn padded_base() -> IdentifyConfig {
    IdentifyConfig { spectrum: SpectrumPath::PaddedPow2, ..IdentifyConfig::default() }
}

fn scenario(name: &str) -> Scenario {
    matrix()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("scenario '{name}' missing from the fast matrix"))
}

fn assert_padded_gates(s: &Scenario) {
    let report = run_scenario_with_base(s, &padded_base());
    assert!(
        report.pass,
        "scenario '{}' (seed {}) violated its gates under the padded-FFT path:\n  {}\nreplay: \
         cargo run --release -p taxilight-eval --bin evalsuite -- --padded-fft --scenario {}",
        s.name,
        s.seed,
        report.failures.join("\n  "),
        s.name,
    );
    assert!(report.identified > 0, "padded-FFT path identified nothing on '{}'", s.name);
}

#[test]
fn padded_fft_holds_accuracy_gates_on_fast_scenario() {
    assert_padded_gates(&scenario("grid-static-dense"));
}

/// The gated corruption point must hold on the padded path too — one
/// severity, every profile.
#[test]
fn padded_fft_holds_robustness_gates_at_gate_severity() {
    let report = run_robustness_with_base(&[GATE_SEVERITY], &padded_base());
    assert!(!report.profiles.is_empty());
    for p in &report.profiles {
        assert!(
            p.pass,
            "profile '{}' violated its gate under the padded-FFT path:\n  {}",
            p.profile,
            p.failures.join("\n  "),
        );
    }
}

#[cfg(feature = "slow-eval")]
mod slow {
    use super::*;

    /// Every fast-matrix scenario, padded path, all gates.
    #[test]
    fn padded_fft_holds_all_fast_matrix_gates() {
        for s in matrix() {
            assert_padded_gates(&s);
        }
    }
}
