//! The acceptance tier for the dispatched SIMD kernel layer: forcing
//! `taxilight_signal::kernels` to either path must leave every accuracy
//! and robustness gate passing, and — because every kernel is
//! bit-identical to its scalar twin by contract — the two paths must
//! produce byte-identical evaluation reports. A fast scenario and the
//! gated corruption severity run in the default tier; the whole fast
//! matrix rides behind `--features slow-eval`.
//!
//! Dispatch is forced per-path *inside one test* (the force is process
//! global); the bit-identity contract means any interleaving with other
//! tests is harmless — both paths compute the same bits.
//!
//! Replay a failure with:
//!
//! ```text
//! TAXILIGHT_KERNELS=simd cargo run --release -p taxilight-eval --bin evalsuite -- --scenario <name>
//! ```

use taxilight_core::IdentifyConfig;
use taxilight_eval::robustness::{run_robustness_with_base, GATE_SEVERITY};
use taxilight_eval::{matrix, run_scenario_with_base, AccuracyReport, Scenario};
use taxilight_signal::kernels::{self, KernelDispatch};

fn scenario(name: &str) -> Scenario {
    matrix()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("scenario '{name}' missing from the fast matrix"))
}

/// Runs `s` under a forced dispatch, restoring the previous dispatch
/// after, and returns the full report JSON.
fn eval_under(s: &Scenario, d: KernelDispatch) -> String {
    let prev = kernels::dispatch();
    kernels::force(d);
    let report = run_scenario_with_base(s, &IdentifyConfig::default());
    kernels::force(prev);
    assert!(
        report.pass,
        "scenario '{}' (seed {}) violated its gates under {d:?} kernels:\n  {}\nreplay: \
         TAXILIGHT_KERNELS={} cargo run --release -p taxilight-eval --bin evalsuite -- --scenario {}",
        s.name,
        s.seed,
        report.failures.join("\n  "),
        if d == KernelDispatch::Simd { "simd" } else { "scalar" },
        s.name,
    );
    assert!(report.identified > 0, "{d:?} kernels identified nothing on '{}'", s.name);
    AccuracyReport { scenarios: vec![report] }.to_json()
}

fn assert_dispatch_gates(s: &Scenario) {
    let scalar = eval_under(s, KernelDispatch::Scalar);
    let simd = eval_under(s, KernelDispatch::Simd);
    assert_eq!(
        scalar, simd,
        "scenario '{}': scalar and SIMD kernel paths diverged — the bit-identity \
         contract of taxilight_signal::kernels is broken",
        s.name,
    );
}

#[test]
fn kernel_dispatch_holds_accuracy_gates_and_is_bit_equal() {
    assert_dispatch_gates(&scenario("grid-static-dense"));
}

/// The gated corruption point must hold with SIMD kernels forced — one
/// severity, every profile.
#[test]
fn kernel_dispatch_holds_robustness_gates_at_gate_severity() {
    let prev = kernels::dispatch();
    kernels::force(KernelDispatch::Simd);
    let report = run_robustness_with_base(&[GATE_SEVERITY], &IdentifyConfig::default());
    kernels::force(prev);
    assert!(!report.profiles.is_empty());
    for p in &report.profiles {
        assert!(
            p.pass,
            "profile '{}' violated its gate with SIMD kernels forced:\n  {}",
            p.profile,
            p.failures.join("\n  "),
        );
    }
}

#[cfg(feature = "slow-eval")]
mod slow {
    use super::*;

    /// Every fast-matrix scenario, both dispatches, all gates, bit-equal.
    #[test]
    fn kernel_dispatch_holds_all_fast_matrix_gates() {
        for s in matrix() {
            assert_dispatch_gates(&s);
        }
    }
}
