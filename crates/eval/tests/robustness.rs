//! Robustness tier: the seeded fault-injection sweep at its gated
//! low-severity points, the byte-level determinism contract of
//! `BENCH_robustness.json`, and the paper-city streaming acceptance
//! criterion (shuffled + duplicated delivery must not change what the
//! real-time identifier concludes). A failing gate names the profile and
//! replays with:
//!
//! ```text
//! cargo run --release -p taxilight-eval --bin evalsuite -- --robustness
//! ```

use taxilight_core::realtime::RealtimeIdentifier;
use taxilight_eval::robustness::{run_robustness, RobustnessReport, FAST_SEVERITIES};
use taxilight_sim::paper_city;
use taxilight_trace::corrupt::{corrupt_records, CorruptOp, Profile};

/// Every profile's gate must hold on the fast ladder, severity zero must
/// be a true identity point, and the report must carry the full curve
/// schema — one sweep, all three contracts.
#[test]
fn low_severity_gates_hold_for_every_profile() {
    let report = run_robustness(&FAST_SEVERITIES);

    assert!(
        report.profiles.len() >= 6,
        "need at least 6 gated corruption profiles, got {}",
        report.profiles.len()
    );
    assert_eq!(report.profiles.len(), Profile::ALL.len());

    for p in &report.profiles {
        assert!(
            p.pass,
            "profile '{}' violated its low-severity gate:\n  {}\nreplay: cargo run --release -p \
             taxilight-eval --bin evalsuite -- --robustness",
            p.profile,
            p.failures.join("\n  "),
        );
        assert_eq!(p.points.len(), FAST_SEVERITIES.len(), "{}", p.profile);
        assert!(!p.ops.is_empty(), "{}: no operators", p.profile);
    }

    // Severity 0 applies no corruption, so every profile's zero point is
    // the same clean-pipeline run: identical metrics, no spurious
    // changes.
    let zero = &report.profiles[0].points[0];
    assert!(zero.attempts > 0 && zero.identified > 0, "clean baseline identified nothing");
    for p in &report.profiles {
        let z = &p.points[0];
        assert_eq!(z.severity, 0.0);
        assert_eq!((z.attempts, z.identified), (zero.attempts, zero.identified), "{}", p.profile);
        assert_eq!(z.median_cycle_err_s, zero.median_cycle_err_s, "{}", p.profile);
        assert_eq!(z.spurious_change_rate, 0.0, "{}", p.profile);
    }

    let json = report.to_json();
    for key in [
        "\"schema\":\"taxilight-robustness/1\"",
        "\"gate_severity\"",
        "\"profiles\"",
        "\"points\"",
        "\"severity\"",
        "\"median_cycle_err_s\"",
        "\"median_red_bins\"",
        "\"cycle_err_cdf\"",
        "\"spurious_change_rate\"",
        "\"gate\"",
    ] {
        assert!(json.contains(key), "robustness JSON missing {key}");
    }
}

/// The acceptance criterion for the sweep itself: same ladder, same
/// seeds → byte-identical JSON, or failures cannot be replayed.
#[test]
fn robustness_report_is_byte_identical_across_runs() {
    let severities = [0.5];
    let a = run_robustness(&severities).to_json();
    let b = run_robustness(&severities).to_json();
    assert_eq!(a, b, "same ladder, same seeds, different bytes — determinism regression");
}

/// An empty profile list can never pass vacuously: `all_pass` is about
/// the profiles that ran, and the runner always runs `Profile::ALL`.
#[test]
fn report_judges_what_it_ran() {
    let report = RobustnessReport {
        seed: 0,
        topology: "none".into(),
        taxis: 0,
        window_s: 0,
        severities: vec![],
        profiles: vec![],
    };
    assert!(report.all_pass(), "vacuous pass is fine for the empty struct itself");
    assert!(report.to_json().contains("\"profiles\":[]"));
}

/// Paper-city acceptance criterion: a shuffled + duplicated delivery of
/// the same records through [`RealtimeIdentifier`] must converge to the
/// exact schedules of the clean, in-order delivery.
#[test]
fn paper_city_shuffled_duplicated_feed_matches_clean_ordering() {
    let mut city = paper_city(90210, 100);
    // A uniformly active fleet keeps the record rate high enough that a
    // 60 s reorder grace dwarfs the 15-position shuffle window.
    city.sim_config.hourly_activity = [1.0; 24];
    let start = taxilight_trace::Timestamp::civil(2014, 12, 5, 9, 0, 0);
    let (log, _) = city.run_from(start, 3600 + 1200);
    // A live feed arrives in rough chronological order; the log's
    // canonical (taxi, time) grouping would let the watermark race ahead
    // on one taxi's records.
    let mut records = log.into_records();
    records.sort_by_key(|r| r.time);

    let mut clean = RealtimeIdentifier::builder(&city.net).reorder_grace_s(60).build().unwrap();
    clean.extend(records.iter());

    let dirty = corrupt_records(
        &records,
        &[CorruptOp::Duplicate { prob: 0.25 }, CorruptOp::Shuffle { window: 15 }],
        90211,
    );
    assert!(dirty.len() > records.len(), "duplication added no records");
    let mut noisy = RealtimeIdentifier::builder(&city.net).reorder_grace_s(60).build().unwrap();
    noisy.extend(dirty.iter());

    // Compare through the serving query surface: the same immutable
    // ScheduleView (and FNV digest) a `taxilightd` snapshot exposes, so
    // this acceptance criterion gates exactly what clients would see.
    let a = clean.view();
    let b = noisy.view();
    assert!(!a.is_empty(), "clean paper-city feed identified nothing");
    assert_eq!(
        a.digest(),
        b.digest(),
        "shuffled+duplicated paper-city feed diverged from clean ordering"
    );
    for (light, s) in a.schedules() {
        assert_eq!(Some(s), b.schedule(light), "schedule mismatch at {light:?}");
    }
}
