//! Conformance tier: one test per fast-matrix scenario, each judging the
//! full pipeline against its accuracy gates, plus the determinism
//! contract (same seed → byte-identical report). A failure message names
//! the violated gate and the scenario seed, which replays the run
//! bit-for-bit:
//!
//! ```text
//! cargo run --release -p taxilight-eval --bin evalsuite -- --scenario <name>
//! ```
//!
//! The extended matrix rides behind `--features slow-eval`.

use taxilight_eval::{matrix, run_scenario, AccuracyReport, Scenario};

fn scenario(name: &str) -> Scenario {
    matrix()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("scenario '{name}' missing from the fast matrix"))
}

fn assert_gates(name: &str) {
    let s = scenario(name);
    let report = run_scenario(&s);
    assert!(
        report.pass,
        "scenario '{}' (seed {}) violated its gates:\n  {}\nreplay: cargo run --release -p \
         taxilight-eval --bin evalsuite -- --scenario {}",
        s.name,
        s.seed,
        report.failures.join("\n  "),
        s.name,
    );
}

#[test]
fn grid_static_dense_meets_gates() {
    assert_gates("grid-static-dense");
}

#[test]
fn grid_mixed_offpeak_meets_gates() {
    assert_gates("grid-mixed-offpeak");
}

#[test]
fn grid_sparse_sampling_meets_gates() {
    assert_gates("grid-sparse-sampling");
}

#[test]
fn irregular_static_meets_gates() {
    assert_gates("irregular-static");
}

#[test]
fn grid_change_detection_meets_gates() {
    assert_gates("grid-change-detection");
}

/// The acceptance criterion for the harness itself: identical seeds must
/// serialise to identical bytes, or failures cannot be replayed.
#[test]
fn identical_seeds_give_identical_reports() {
    let s = scenario("grid-static-dense");
    let a = AccuracyReport { scenarios: vec![run_scenario(&s)] }.to_json();
    let b = AccuracyReport { scenarios: vec![run_scenario(&s)] }.to_json();
    assert_eq!(a, b, "same scenario, same seed, different bytes — determinism regression");
}

/// Reports must carry the full metric set the paper's figures need.
#[test]
fn report_schema_is_complete() {
    let s = scenario("grid-static-dense");
    let r = run_scenario(&s);
    assert!(r.attempts > 0);
    assert!(r.cycle_err_s.count > 0, "no cycle errors measured");
    assert!(!r.cycle_err_cdf.is_empty() && !r.red_bins_cdf.is_empty());
    assert!(r.quality_grades.iter().sum::<usize>() > 0, "no quality grades");
    assert_eq!(r.lights.len(), r.attempts);
    let json = AccuracyReport { scenarios: vec![r] }.to_json();
    for key in [
        "\"schema\":\"taxilight-eval/1\"",
        "\"cycle_err_s\"",
        "\"red_err_bins\"",
        "\"change_err_s\"",
        "\"cycle_err_cdf\"",
        "\"quality_grades\"",
        "\"gates\"",
        "\"lights\"",
    ] {
        assert!(json.contains(key), "report JSON missing {key}");
    }
}

#[cfg(feature = "slow-eval")]
mod slow {
    use super::*;
    use taxilight_eval::extended_matrix;

    fn extended(name: &str) -> Scenario {
        extended_matrix()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("scenario '{name}' missing from the extended matrix"))
    }

    fn assert_extended_gates(name: &str) {
        let s = extended(name);
        let report = run_scenario(&s);
        assert!(
            report.pass,
            "extended scenario '{}' (seed {}) violated its gates:\n  {}",
            s.name,
            s.seed,
            report.failures.join("\n  "),
        );
    }

    #[test]
    fn replicas_meet_gates() {
        for name in ["grid-static-replica-a", "grid-static-replica-b", "grid-static-replica-c"] {
            assert_extended_gates(name);
        }
    }

    #[test]
    fn fleet_density_sweep_meets_gates() {
        assert_extended_gates("grid-fleet-sparse");
        assert_extended_gates("grid-fleet-dense");
    }

    #[test]
    fn irregular_mixed_meets_gates() {
        assert_extended_gates("irregular-mixed");
    }

    #[test]
    fn fast_sampling_meets_gates() {
        assert_extended_gates("grid-fast-sampling");
    }
}
