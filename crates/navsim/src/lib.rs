//! # taxilight-navsim
//!
//! The navigation demo of the paper's Sec. VIII-B (Figs. 15–16), built as
//! a purpose-made substitute for SUMO: a grid world with runtime-queryable
//! traffic lights, deterministic single-vehicle travel simulation, and
//! three navigation strategies —
//!
//! * **free-flow** (the conventional shortest-time baseline that considers
//!   only traffic speed),
//! * the paper's **exhaustive trajectory enumeration** with re-planning at
//!   every intersection (explicitly non-polynomial; hop-bounded here), and
//! * an **exact time-dependent Dijkstra** extension that computes the true
//!   optimum in polynomial time — used both as an upper bound on
//!   achievable savings and as a correctness oracle for the enumeration.
//!
//! The headline experiment ([`experiment`]) reproduces Fig. 16: savings
//! from schedule-aware routing grow with trip distance toward ~15 %.
//! [`advisory`] adds the paper's other motivating application: a
//! green-catching speed advisory for a single approach.

#![warn(missing_docs)]

pub mod advisory;
pub mod experiment;
pub mod routing;
pub mod travel;
pub mod world;

pub use advisory::{green_window_advice, plan_corridor, CorridorPlan, GreenAdvice};
pub use experiment::{run_fig16, Fig16Config, Fig16Row};
pub use routing::{navigate, NavOutcome, Strategy};
pub use world::NavWorld;
