//! Navigation strategies.
//!
//! * [`Strategy::FreeFlow`] — the conventional baseline: the route that
//!   minimises pure driving time; red lights are endured, not planned for.
//! * [`Strategy::Enumerate`] — the paper's demo algorithm: enumerate
//!   trajectories from the current position to the destination, score each
//!   by driving + waiting time, take the best, and re-plan at every
//!   intersection. The paper notes the complexity is "not polynomial-time";
//!   the enumeration is hop-bounded (shortest-hops + `extra_hops`).
//! * [`Strategy::Exact`] — extension: time-dependent Dijkstra. Because
//!   waiting is FIFO (departing later can never let you cross earlier),
//!   label-setting is exact — a polynomial-time optimum that doubles as a
//!   correctness oracle for the enumeration.

use crate::travel::traverse;
use crate::world::NavWorld;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use taxilight_roadnet::graph::{NodeId, SegmentId};
use taxilight_roadnet::routing::shortest_time_route;
use taxilight_trace::time::Timestamp;

/// How to choose routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Shortest driving time, schedule-blind.
    FreeFlow,
    /// The paper's bounded exhaustive enumeration with re-planning;
    /// `extra_hops` is the detour budget beyond the hop-shortest path.
    Enumerate {
        /// Additional hops allowed beyond the minimum hop count.
        extra_hops: usize,
    },
    /// Exact time-dependent Dijkstra.
    Exact,
}

/// Outcome of a navigated trip.
#[derive(Debug, Clone, PartialEq)]
pub struct NavOutcome {
    /// Segments actually driven.
    pub route: Vec<SegmentId>,
    /// Arrival time.
    pub arrival: Timestamp,
    /// Seconds driving.
    pub driving_s: f64,
    /// Seconds waiting at red lights.
    pub waiting_s: f64,
}

impl NavOutcome {
    /// Total trip time in seconds.
    pub fn total_s(&self) -> f64 {
        self.driving_s + self.waiting_s
    }
}

/// Minimum hop counts from every node to `dest` (BFS over reversed edges).
fn hops_to(world: &NavWorld, dest: NodeId) -> Vec<u32> {
    let n = world.net.node_count();
    let mut hops = vec![u32::MAX; n];
    hops[dest.0 as usize] = 0;
    let mut queue = std::collections::VecDeque::from([dest]);
    while let Some(node) = queue.pop_front() {
        let h = hops[node.0 as usize];
        for &seg_id in world.net.into_node(node) {
            let prev = world.net.segment(seg_id).from;
            if hops[prev.0 as usize] == u32::MAX {
                hops[prev.0 as usize] = h + 1;
                queue.push_back(prev);
            }
        }
    }
    hops
}

/// Enumerates all simple paths `from → dest` with at most `budget` hops
/// (pruned with the `hops_to` lower bound) and returns the one with the
/// smallest simulated total time from `depart`.
fn best_enumerated(
    world: &NavWorld,
    from: NodeId,
    dest: NodeId,
    depart: Timestamp,
    extra_hops: usize,
) -> Option<Vec<SegmentId>> {
    let hops = hops_to(world, dest);
    let min_hops = hops[from.0 as usize];
    if min_hops == u32::MAX {
        return None;
    }
    let budget = min_hops as usize + extra_hops;

    let mut best: Option<(f64, Vec<SegmentId>)> = None;
    let mut path: Vec<SegmentId> = Vec::new();
    let mut visited = vec![false; world.net.node_count()];
    visited[from.0 as usize] = true;

    #[allow(clippy::too_many_arguments)] // recursion state, not an API
    fn dfs(
        world: &NavWorld,
        node: NodeId,
        dest: NodeId,
        depart: Timestamp,
        budget: usize,
        hops: &[u32],
        path: &mut Vec<SegmentId>,
        visited: &mut Vec<bool>,
        best: &mut Option<(f64, Vec<SegmentId>)>,
    ) {
        if node == dest {
            let time = traverse(world, path, depart).total_s();
            if best.as_ref().is_none_or(|(t, _)| time < *t) {
                *best = Some((time, path.clone()));
            }
            return;
        }
        if path.len() >= budget {
            return;
        }
        for &seg_id in world.net.out_of(node) {
            let next = world.net.segment(seg_id).to;
            if visited[next.0 as usize] {
                continue;
            }
            let lower_bound = hops[next.0 as usize];
            if lower_bound == u32::MAX || path.len() + 1 + lower_bound as usize > budget {
                continue;
            }
            visited[next.0 as usize] = true;
            path.push(seg_id);
            dfs(world, next, dest, depart, budget, hops, path, visited, best);
            path.pop();
            visited[next.0 as usize] = false;
        }
    }

    dfs(world, from, dest, depart, budget, &hops, &mut path, &mut visited, &mut best);
    best.map(|(_, route)| route)
}

#[derive(Debug, PartialEq)]
struct TdEntry {
    ready: i64,
    node: NodeId,
}

impl Eq for TdEntry {}

impl Ord for TdEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.ready.cmp(&self.ready) // min-heap
    }
}

impl PartialOrd for TdEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Exact time-dependent Dijkstra: earliest arrival route `from → dest`
/// departing at `depart`. `None` when unreachable.
pub fn td_dijkstra(
    world: &NavWorld,
    from: NodeId,
    dest: NodeId,
    depart: Timestamp,
) -> Option<Vec<SegmentId>> {
    let n = world.net.node_count();
    // ready[v]: earliest time the vehicle can *leave* node v (post-wait).
    let mut ready = vec![i64::MAX; n];
    let mut prev: Vec<Option<SegmentId>> = vec![None; n];
    ready[from.0 as usize] = depart.0;
    let mut heap = BinaryHeap::from([TdEntry { ready: depart.0, node: from }]);
    while let Some(TdEntry { ready: t, node }) = heap.pop() {
        if node == dest {
            break;
        }
        if t > ready[node.0 as usize] {
            continue;
        }
        for &seg_id in world.net.out_of(node) {
            let seg = world.net.segment(seg_id);
            let drive = world.drive_time_s(seg_id).round() as i64;
            let at_end = t + drive;
            let total = if seg.to == dest {
                at_end
            } else {
                at_end + world.wait_at_end(seg_id, Timestamp(at_end)).round() as i64
            };
            if total < ready[seg.to.0 as usize] {
                ready[seg.to.0 as usize] = total;
                prev[seg.to.0 as usize] = Some(seg_id);
                heap.push(TdEntry { ready: total, node: seg.to });
            }
        }
    }
    if ready[dest.0 as usize] == i64::MAX {
        return None;
    }
    let mut route = Vec::new();
    let mut cursor = dest;
    while cursor != from {
        let seg_id = prev[cursor.0 as usize]?;
        route.push(seg_id);
        cursor = world.net.segment(seg_id).from;
    }
    route.reverse();
    Some(route)
}

/// Navigates `from → to` departing at `depart` under `strategy`,
/// re-planning at every intersection (which only matters for the bounded
/// enumeration — the baseline's plan is static and the exact plan is
/// already optimal).
pub fn navigate(
    world: &NavWorld,
    from: NodeId,
    to: NodeId,
    depart: Timestamp,
    strategy: Strategy,
) -> Option<NavOutcome> {
    if from == to {
        return Some(NavOutcome {
            route: Vec::new(),
            arrival: depart,
            driving_s: 0.0,
            waiting_s: 0.0,
        });
    }
    let mut route = Vec::new();
    let mut node = from;
    let mut clock = depart;
    let mut driving_s = 0.0;
    let mut waiting_s = 0.0;
    // Bounded: each re-plan consumes one segment, so the loop terminates
    // within this many iterations on any sane plan.
    let max_steps = world.net.segment_count() * 4;
    for _ in 0..max_steps {
        let plan = match strategy {
            Strategy::FreeFlow => shortest_time_route(&world.net, node, to)?.segments,
            Strategy::Enumerate { extra_hops } => {
                best_enumerated(world, node, to, clock, extra_hops)?
            }
            Strategy::Exact => td_dijkstra(world, node, to, clock)?,
        };
        let &first = plan.first()?;
        let seg = world.net.segment(first);
        let drive = world.drive_time_s(first);
        driving_s += drive;
        clock = clock.offset(drive.round() as i64);
        node = seg.to;
        route.push(first);
        if node == to {
            return Some(NavOutcome { route, arrival: clock, driving_s, waiting_s });
        }
        let wait = world.wait_at_end(first, clock);
        waiting_s += wait;
        clock = clock.offset(wait.round() as i64);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{NavWorld, WorldConfig};

    fn world(seed: u64) -> NavWorld {
        NavWorld::fig15(&WorldConfig::default(), seed)
    }

    fn depart() -> Timestamp {
        Timestamp::civil(2014, 12, 5, 9, 0, 0)
    }

    #[test]
    fn trivial_trip() {
        let w = world(1);
        let out = navigate(&w, w.node(0, 0), w.node(0, 0), depart(), Strategy::FreeFlow).unwrap();
        assert_eq!(out.total_s(), 0.0);
        assert!(out.route.is_empty());
    }

    #[test]
    fn all_strategies_reach_the_destination() {
        let w = world(2);
        for strategy in [Strategy::FreeFlow, Strategy::Enumerate { extra_hops: 2 }, Strategy::Exact]
        {
            let out = navigate(&w, w.node(0, 0), w.node(4, 4), depart(), strategy).unwrap();
            let last = w.net.segment(*out.route.last().unwrap());
            assert_eq!(last.to, w.node(4, 4), "{strategy:?} must end at the destination");
            // Route is connected.
            let mut cursor = w.node(0, 0);
            for &seg in &out.route {
                assert_eq!(w.net.segment(seg).from, cursor);
                cursor = w.net.segment(seg).to;
            }
            assert!(out.total_s() > 0.0);
        }
    }

    #[test]
    fn schedule_aware_never_loses_to_baseline() {
        let w = world(3);
        for (r, c) in [(2, 2), (4, 3), (3, 4), (4, 4)] {
            let base =
                navigate(&w, w.node(0, 0), w.node(r, c), depart(), Strategy::FreeFlow).unwrap();
            let exact =
                navigate(&w, w.node(0, 0), w.node(r, c), depart(), Strategy::Exact).unwrap();
            assert!(
                exact.total_s() <= base.total_s() + 1.0,
                "exact {} vs baseline {} to ({r},{c})",
                exact.total_s(),
                base.total_s()
            );
        }
    }

    #[test]
    fn enumeration_matches_exact_with_enough_slack() {
        // The oracle check: bounded enumeration with a generous detour
        // budget must equal the exact optimum (both re-plan, both
        // deterministic).
        let w = world(4);
        for (r, c) in [(1, 1), (2, 3), (3, 2)] {
            let enumerated = navigate(
                &w,
                w.node(0, 0),
                w.node(r, c),
                depart(),
                Strategy::Enumerate { extra_hops: 4 },
            )
            .unwrap();
            let exact =
                navigate(&w, w.node(0, 0), w.node(r, c), depart(), Strategy::Exact).unwrap();
            assert!(
                (enumerated.total_s() - exact.total_s()).abs() <= 2.0,
                "enumerate {} vs exact {} to ({r},{c})",
                enumerated.total_s(),
                exact.total_s()
            );
        }
    }

    #[test]
    fn td_dijkstra_route_is_connected() {
        let w = world(5);
        let route = td_dijkstra(&w, w.node(0, 0), w.node(4, 2), depart()).unwrap();
        let mut cursor = w.node(0, 0);
        for &seg in &route {
            assert_eq!(w.net.segment(seg).from, cursor);
            cursor = w.net.segment(seg).to;
        }
        assert_eq!(cursor, w.node(4, 2));
    }

    #[test]
    fn detours_are_taken_when_they_pay() {
        // Over many seeds and OD pairs, the exact strategy must sometimes
        // pick a route longer in hops than the baseline — proof that red
        // light bypassing actually engages.
        let mut detours = 0;
        for seed in 0..10 {
            let w = world(seed);
            let base =
                navigate(&w, w.node(0, 0), w.node(4, 4), depart(), Strategy::FreeFlow).unwrap();
            let exact =
                navigate(&w, w.node(0, 0), w.node(4, 4), depart(), Strategy::Exact).unwrap();
            if exact.route.len() > base.route.len() || exact.route != base.route {
                detours += 1;
            }
        }
        assert!(detours > 0, "schedule-aware routing never deviated in 10 worlds");
    }

    #[test]
    fn hops_lower_bound_is_admissible() {
        let w = world(6);
        let hops = hops_to(&w, w.node(4, 4));
        // Manhattan distance on the grid.
        for r in 0..5 {
            for c in 0..5 {
                let expect = (4 - r) + (4 - c);
                assert_eq!(hops[w.node(r, c).0 as usize], expect as u32);
            }
        }
    }
}
