//! The navigation world: the Fig. 15 grid topology with a traffic light on
//! every intersection.
//!
//! Per the paper's setup: "the length of shortest road segment is 1 km.
//! Traffic lights are placed on each intersection. … the traffic lights
//! cycle length are randomly picked from 120 s to 300 s. The red and green
//! lights have the same duration."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use taxilight_core::ScheduleView;
use taxilight_roadnet::generators::{grid_city, GridConfig};
use taxilight_roadnet::graph::{NodeId, RoadNetwork, SegmentId};
use taxilight_sim::lights::{IntersectionPlan, PhasePlan, SignalMap};
use taxilight_trace::time::Timestamp;

/// A grid world whose lights are queryable at runtime — what the paper's
/// identified schedules enable for a navigation application.
#[derive(Debug, Clone)]
pub struct NavWorld {
    /// The road network (grid with every node signalized).
    pub net: RoadNetwork,
    /// Ground-truth (or identified) schedules for every light.
    pub signals: SignalMap,
    /// `node_at[row][col]` for test/experiment addressing.
    pub node_at: Vec<Vec<NodeId>>,
    /// Vehicle cruise speed on every segment, km/h.
    pub speed_kmh: f64,
}

/// Configuration for [`NavWorld::fig15`].
#[derive(Debug, Clone, Copy)]
pub struct WorldConfig {
    /// Grid nodes per side.
    pub dim: usize,
    /// Segment length in meters (paper: shortest segment 1 km).
    pub segment_m: f64,
    /// Cycle length range, seconds (paper: 120–300 s).
    pub cycle_range_s: (u32, u32),
    /// Cruise speed, km/h.
    pub speed_kmh: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig { dim: 5, segment_m: 1_000.0, cycle_range_s: (120, 300), speed_kmh: 50.0 }
    }
}

impl NavWorld {
    /// Builds the Fig. 15 world: `dim × dim` grid, every intersection
    /// signalized, cycle drawn uniformly from `cycle_range_s`, red = green,
    /// random phase offsets. Deterministic in `seed`.
    pub fn fig15(cfg: &WorldConfig, seed: u64) -> NavWorld {
        let city = grid_city(&GridConfig {
            rows: cfg.dim,
            cols: cfg.dim,
            spacing_m: cfg.segment_m,
            speed_limit_kmh: cfg.speed_kmh,
            signalize_boundary: true,
            ..GridConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(seed);
        let mut signals = SignalMap::new();
        for &ix in &city.intersections {
            // Red and green have the same duration (paper) — force an even
            // cycle so the split is exact on both axes.
            let cycle = rng.gen_range(cfg.cycle_range_s.0..=cfg.cycle_range_s.1) & !1;
            let red = cycle / 2;
            let offset = rng.gen_range(0..cycle);
            signals.install_intersection(
                &city.net,
                ix,
                IntersectionPlan { ns: PhasePlan::new(cycle, red, offset) },
            );
        }
        NavWorld { net: city.net, signals, node_at: city.node_at, speed_kmh: cfg.speed_kmh }
    }

    /// Node at grid coordinates.
    pub fn node(&self, row: usize, col: usize) -> NodeId {
        self.node_at[row][col]
    }

    /// Driving time for one segment at cruise speed, seconds.
    pub fn drive_time_s(&self, seg: SegmentId) -> f64 {
        let s = self.net.segment(seg);
        s.length_m / (self.speed_kmh / 3.6)
    }

    /// Wait (seconds) at the downstream light of `seg` for a vehicle that
    /// arrives there at `t`; 0 when green or unsignalized.
    pub fn wait_at_end(&self, seg: SegmentId, t: Timestamp) -> f64 {
        match self.net.light_of_segment(seg) {
            Some(light) => {
                self.signals.schedule(light).map(|s| s.wait_for_green(t) as f64).unwrap_or(0.0)
            }
            None => 0.0,
        }
    }

    /// Like [`NavWorld::wait_at_end`], but answered from an *identified*
    /// schedule snapshot — e.g. a [`ScheduleView`] served by `taxilightd`
    /// — instead of the ground-truth signal map. Lights the view has not
    /// identified wait 0: a navigator without information assumes no
    /// delay, exactly like an unsignalized node.
    pub fn wait_at_end_from_view(&self, view: &ScheduleView, seg: SegmentId, t: Timestamp) -> f64 {
        match self.net.light_of_segment(seg) {
            Some(light) => view.wait_for_green(light, t).unwrap_or(0.0),
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_world_shape() {
        let w = NavWorld::fig15(&WorldConfig::default(), 1);
        assert_eq!(w.net.node_count(), 25);
        assert_eq!(w.net.intersections().len(), 25);
        // Every segment terminates at a signalized node.
        for seg in w.net.segments() {
            assert!(w.net.light_of_segment(seg.id).is_some());
        }
    }

    #[test]
    fn cycles_in_configured_range_and_red_equals_green() {
        let w = NavWorld::fig15(&WorldConfig::default(), 7);
        let t = Timestamp::civil(2014, 12, 5, 12, 0, 0);
        for light in w.net.lights() {
            let plan = w.signals.plan(light.id, t);
            assert!((120..=300).contains(&plan.cycle_s), "cycle {}", plan.cycle_s);
            assert_eq!(plan.red_s, plan.cycle_s / 2);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = NavWorld::fig15(&WorldConfig::default(), 3);
        let b = NavWorld::fig15(&WorldConfig::default(), 3);
        let t = Timestamp::civil(2014, 12, 5, 12, 0, 0);
        for light in a.net.lights() {
            assert_eq!(a.signals.plan(light.id, t), b.signals.plan(light.id, t));
        }
    }

    #[test]
    fn drive_time_matches_speed() {
        let w = NavWorld::fig15(&WorldConfig::default(), 1);
        let seg = w.net.segments()[0].id;
        // 1 km at 50 km/h = 72 s.
        assert!((w.drive_time_s(seg) - 72.0).abs() < 0.5);
    }

    /// Ground-truth plans re-expressed as identified [`LightSchedule`]s:
    /// what a perfect identification round would publish.
    fn view_of_signals(w: &NavWorld, version: u64) -> ScheduleView {
        use taxilight_core::LightSchedule;
        let t = Timestamp(0);
        let schedules = w
            .net
            .lights()
            .into_iter()
            .map(|l| {
                let plan = w.signals.plan(l.id, t);
                (
                    l.id,
                    LightSchedule {
                        light: l.id,
                        cycle_s: plan.cycle_s as f64,
                        red_s: plan.red_s as f64,
                        green_s: (plan.cycle_s - plan.red_s) as f64,
                        red_start_s: plan.offset_s as f64,
                        snr: f64::INFINITY,
                        samples: 0,
                    },
                )
            })
            .collect();
        ScheduleView::new(version, Some(t), schedules)
    }

    #[test]
    fn view_waits_match_ground_truth_everywhere() {
        let w = NavWorld::fig15(&WorldConfig::default(), 11);
        let view = view_of_signals(&w, 1);
        let base = Timestamp::civil(2014, 12, 5, 12, 0, 0);
        for seg in w.net.segments() {
            for dt in [0i64, 13, 59, 61, 150, 299, 300, 1234] {
                let t = base.offset(dt);
                assert_eq!(
                    w.wait_at_end_from_view(&view, seg.id, t),
                    w.wait_at_end(seg.id, t),
                    "seg {:?} at +{dt}s",
                    seg.id
                );
            }
        }
    }

    #[test]
    fn unknown_lights_wait_zero_in_view() {
        let w = NavWorld::fig15(&WorldConfig::default(), 11);
        let seg = w.net.segments()[0].id;
        let t = Timestamp::civil(2014, 12, 5, 12, 0, 0);
        // An empty view (daemon before its first round) waits nowhere.
        assert_eq!(w.wait_at_end_from_view(&ScheduleView::empty(), seg, t), 0.0);
    }

    #[test]
    fn wait_at_end_tracks_schedule() {
        let w = NavWorld::fig15(&WorldConfig::default(), 1);
        let seg = w.net.segments()[0].id;
        let light = w.net.light_of_segment(seg).unwrap();
        let plan = w.signals.plan(light, Timestamp(0));
        // At the exact red onset the wait is the full red duration.
        let red_onset = Timestamp(plan.offset_s as i64);
        assert_eq!(w.wait_at_end(seg, red_onset), plan.red_s as f64);
        // Just after the red ends the wait is zero.
        let green = red_onset.offset(plan.red_s as i64);
        assert_eq!(w.wait_at_end(seg, green), 0.0);
    }
}
