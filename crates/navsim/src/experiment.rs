//! The Fig. 16 experiment: shortest-time navigation performance,
//! conventional vs. schedule-aware, as a function of trip distance.
//!
//! Paper result shape: negligible improvement for short trips (bypassing a
//! red light costs extra distance), growing with trip length, ~15 % time
//! saved overall.

use crate::routing::{navigate, Strategy};
use crate::world::{NavWorld, WorldConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use taxilight_trace::time::Timestamp;

/// Configuration for [`run_fig16`].
#[derive(Debug, Clone)]
pub struct Fig16Config {
    /// World geometry/signals.
    pub world: WorldConfig,
    /// Worlds (signal draws) to average over.
    pub worlds: usize,
    /// Trips sampled per (world, distance) cell.
    pub trips_per_cell: usize,
    /// Which navigation strategy plays the schedule-aware role.
    pub strategy: Strategy,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig16Config {
    fn default() -> Self {
        Fig16Config {
            world: WorldConfig::default(),
            worlds: 5,
            trips_per_cell: 12,
            strategy: Strategy::Exact,
            seed: 9,
        }
    }
}

/// One row of the Fig. 16 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig16Row {
    /// Manhattan trip distance in grid hops (× segment length = meters).
    pub distance_hops: usize,
    /// Mean conventional (free-flow-routed) travel time, seconds.
    pub baseline_s: f64,
    /// Mean schedule-aware travel time, seconds.
    pub aware_s: f64,
    /// Trips sampled.
    pub trips: usize,
}

impl Fig16Row {
    /// Fractional time saving of schedule-aware over the baseline.
    pub fn saving(&self) -> f64 {
        if self.baseline_s <= 0.0 {
            0.0
        } else {
            1.0 - self.aware_s / self.baseline_s
        }
    }
}

/// Runs the Fig. 16 sweep: for every Manhattan distance `1 ..= 2·(dim−1)`
/// sample OD pairs at that distance, navigate with both strategies, and
/// average.
pub fn run_fig16(cfg: &Fig16Config) -> Vec<Fig16Row> {
    let dim = cfg.world.dim;
    let max_hops = 2 * (dim - 1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut rows: Vec<Fig16Row> = (1..=max_hops)
        .map(|d| Fig16Row { distance_hops: d, baseline_s: 0.0, aware_s: 0.0, trips: 0 })
        .collect();

    for world_idx in 0..cfg.worlds {
        let world = NavWorld::fig15(&cfg.world, cfg.seed ^ (world_idx as u64) << 8);
        for row in rows.iter_mut() {
            for _ in 0..cfg.trips_per_cell {
                // Sample an OD pair at exactly this Manhattan distance.
                let Some(((r1, c1), (r2, c2))) = sample_pair(&mut rng, dim, row.distance_hops)
                else {
                    continue;
                };
                let depart = Timestamp::civil(2014, 12, 5, 9, 0, 0).offset(rng.gen_range(0..3600));
                let from = world.node(r1, c1);
                let to = world.node(r2, c2);
                let Some(base) = navigate(&world, from, to, depart, Strategy::FreeFlow) else {
                    continue;
                };
                let Some(aware) = navigate(&world, from, to, depart, cfg.strategy) else {
                    continue;
                };
                row.baseline_s += base.total_s();
                row.aware_s += aware.total_s();
                row.trips += 1;
            }
        }
    }
    for row in &mut rows {
        if row.trips > 0 {
            row.baseline_s /= row.trips as f64;
            row.aware_s /= row.trips as f64;
        }
    }
    rows
}

/// Samples grid coordinates `(from, to)` whose Manhattan distance is
/// exactly `hops`; `None` when the distance is unrealisable (never on the
/// grids used here, but kept total).
fn sample_pair(
    rng: &mut StdRng,
    dim: usize,
    hops: usize,
) -> Option<((usize, usize), (usize, usize))> {
    for _ in 0..64 {
        let r1 = rng.gen_range(0..dim);
        let c1 = rng.gen_range(0..dim);
        // Split hops between the row and column axes.
        let dr_max = hops.min(dim - 1);
        let dr = rng.gen_range(0..=dr_max);
        let dc = hops - dr;
        if dc > dim - 1 {
            continue;
        }
        let r2 = if rng.gen_bool(0.5) { r1.checked_add(dr) } else { r1.checked_sub(dr) };
        let c2 = if rng.gen_bool(0.5) { c1.checked_add(dc) } else { c1.checked_sub(dc) };
        match (r2, c2) {
            (Some(r2), Some(c2)) if r2 < dim && c2 < dim => {
                return Some(((r1, c1), (r2, c2)));
            }
            _ => continue,
        }
    }
    None
}

/// Aggregate saving across rows, trip-weighted (the paper's "overall,
/// about 15 % driving time can be saved").
pub fn overall_saving(rows: &[Fig16Row]) -> f64 {
    let base: f64 = rows.iter().map(|r| r.baseline_s * r.trips as f64).sum();
    let aware: f64 = rows.iter().map(|r| r.aware_s * r.trips as f64).sum();
    if base <= 0.0 {
        0.0
    } else {
        1.0 - aware / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> Fig16Config {
        Fig16Config {
            world: WorldConfig { dim: 4, ..WorldConfig::default() },
            worlds: 2,
            trips_per_cell: 6,
            strategy: Strategy::Exact,
            seed: 11,
        }
    }

    #[test]
    fn rows_cover_all_distances() {
        let rows = run_fig16(&quick_config());
        assert_eq!(rows.len(), 6); // 2·(4−1)
        for (k, row) in rows.iter().enumerate() {
            assert_eq!(row.distance_hops, k + 1);
            assert!(row.trips > 0, "distance {} sampled no trips", row.distance_hops);
        }
    }

    #[test]
    fn aware_never_slower_on_average() {
        let rows = run_fig16(&quick_config());
        for row in &rows {
            assert!(
                row.aware_s <= row.baseline_s + 2.0,
                "distance {}: aware {} vs baseline {}",
                row.distance_hops,
                row.aware_s,
                row.baseline_s
            );
            assert!(row.saving() >= -0.02);
        }
    }

    #[test]
    fn savings_are_substantial_for_long_trips() {
        // The Fig. 16 shape: meaningful savings once trips span several
        // intersections.
        let rows = run_fig16(&Fig16Config { worlds: 4, trips_per_cell: 10, ..quick_config() });
        let long: Vec<&Fig16Row> = rows.iter().filter(|r| r.distance_hops >= 4).collect();
        let mean_saving: f64 = long.iter().map(|r| r.saving()).sum::<f64>() / long.len() as f64;
        assert!(mean_saving > 0.05, "long-trip saving too small: {mean_saving} ({rows:?})");
        let overall = overall_saving(&rows);
        assert!(overall > 0.04 && overall < 0.5, "overall saving {overall}");
    }

    #[test]
    fn sample_pair_distances_are_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        for hops in 1..=6 {
            for _ in 0..50 {
                if let Some(((r1, c1), (r2, c2))) = sample_pair(&mut rng, 4, hops) {
                    let d = r1.abs_diff(r2) + c1.abs_diff(c2);
                    assert_eq!(d, hops);
                }
            }
        }
    }

    #[test]
    fn overall_saving_weights_by_trips() {
        let rows = vec![
            Fig16Row { distance_hops: 1, baseline_s: 100.0, aware_s: 100.0, trips: 1 },
            Fig16Row { distance_hops: 2, baseline_s: 100.0, aware_s: 50.0, trips: 3 },
        ];
        // (100 + 300 − 100 − 150) / 400 = 0.375.
        assert!((overall_saving(&rows) - 0.375).abs() < 1e-9);
        assert_eq!(overall_saving(&[]), 0.0);
    }
}
