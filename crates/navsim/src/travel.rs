//! Deterministic single-vehicle travel simulation over a fixed route.

use crate::world::NavWorld;
use taxilight_roadnet::graph::SegmentId;
use taxilight_trace::time::Timestamp;

/// Outcome of traversing a route.
#[derive(Debug, Clone, PartialEq)]
pub struct TravelOutcome {
    /// Arrival time at the final node.
    pub arrival: Timestamp,
    /// Seconds spent driving.
    pub driving_s: f64,
    /// Seconds spent waiting at red lights.
    pub waiting_s: f64,
    /// Per-intermediate-node waits, seconds (one entry per segment whose
    /// end is crossed; the final segment's entry is 0 because the trip ends
    /// there).
    pub waits: Vec<f64>,
}

impl TravelOutcome {
    /// Total travel time, seconds.
    pub fn total_s(&self) -> f64 {
        self.driving_s + self.waiting_s
    }
}

/// Drives `route` starting at `depart`, waiting out red lights at every
/// *intermediate* intersection (the trip ends at the last node without
/// crossing it). Sub-second times are kept in `driving_s`/`waiting_s`; the
/// clock advances in whole seconds, rounding waits up the way a stopped
/// vehicle actually experiences them.
pub fn traverse(world: &NavWorld, route: &[SegmentId], depart: Timestamp) -> TravelOutcome {
    let mut clock = depart;
    let mut driving_s = 0.0;
    let mut waiting_s = 0.0;
    let mut waits = Vec::with_capacity(route.len());
    for (k, &seg) in route.iter().enumerate() {
        let drive = world.drive_time_s(seg);
        driving_s += drive;
        clock = clock.offset(drive.round() as i64);
        let last = k + 1 == route.len();
        let wait = if last { 0.0 } else { world.wait_at_end(seg, clock) };
        waiting_s += wait;
        clock = clock.offset(wait.round() as i64);
        waits.push(wait);
    }
    TravelOutcome { arrival: clock, driving_s, waiting_s, waits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use taxilight_roadnet::routing::shortest_time_route;

    fn world() -> NavWorld {
        NavWorld::fig15(&WorldConfig::default(), 5)
    }

    #[test]
    fn empty_route_is_instant() {
        let w = world();
        let depart = Timestamp::civil(2014, 12, 5, 9, 0, 0);
        let out = traverse(&w, &[], depart);
        assert_eq!(out.arrival, depart);
        assert_eq!(out.total_s(), 0.0);
        assert!(out.waits.is_empty());
    }

    #[test]
    fn driving_time_is_distance_over_speed() {
        let w = world();
        let route = shortest_time_route(&w.net, w.node(0, 0), w.node(0, 3)).unwrap();
        let out = traverse(&w, &route.segments, Timestamp::civil(2014, 12, 5, 9, 0, 0));
        // 3 km at 50 km/h = 216 s of pure driving.
        assert!((out.driving_s - 216.0).abs() < 1.0);
        assert!(out.waiting_s >= 0.0);
        assert_eq!(out.waits.len(), 3);
        assert_eq!(out.waits.last(), Some(&0.0), "no wait at the destination");
    }

    #[test]
    fn waits_bounded_by_red_durations() {
        let w = world();
        let route = shortest_time_route(&w.net, w.node(0, 0), w.node(4, 4)).unwrap();
        let out = traverse(&w, &route.segments, Timestamp::civil(2014, 12, 5, 9, 0, 0));
        for &wait in &out.waits {
            assert!(wait <= 150.0, "wait {wait} exceeds the longest possible red");
        }
        assert!((out.total_s() - (out.driving_s + out.waiting_s)).abs() < 1e-9);
    }

    #[test]
    fn departure_time_changes_waits() {
        let w = world();
        let route = shortest_time_route(&w.net, w.node(0, 0), w.node(2, 2)).unwrap();
        let base = Timestamp::civil(2014, 12, 5, 9, 0, 0);
        // Scan departures over two full max cycles; waits must vary.
        let totals: Vec<f64> =
            (0..40).map(|k| traverse(&w, &route.segments, base.offset(k * 15)).total_s()).collect();
        let min = totals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = totals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max > min, "green waves should make totals depart-time dependent");
    }
}
