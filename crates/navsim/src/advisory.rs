//! Green-driving speed advisory — the paper's second motivating
//! application (Sec. I: "Optimal suggestions can also be provided to
//! drivers to pass the intersections smoothly").
//!
//! Given an (identified) light schedule and the distance to the stop
//! line, compute a cruise speed inside the comfort band that arrives
//! during a green phase, eliminating the stop entirely when physics
//! allows it.

use taxilight_sim::lights::{LightState, PhasePlan};
use taxilight_trace::time::Timestamp;

/// Advice for approaching one signalized intersection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreenAdvice {
    /// Speed to hold, km/h. Within the comfort band passed to
    /// [`green_window_advice`].
    pub target_speed_kmh: f64,
    /// Expected arrival time at the stop line when holding the target.
    pub arrive_at: Timestamp,
    /// Expected red wait (seconds) on arrival — 0 when the advisory
    /// catches a green.
    pub expected_wait_s: f64,
    /// Whether the advice differs from simply cruising at the preferred
    /// speed.
    pub adjusted: bool,
}

/// Computes the green-catching speed for a stop line `distance_m` ahead.
///
/// `preferred_kmh` is the driver's cruise speed; the advisory may deviate
/// within `[min_kmh, max_kmh]`. When no speed in the band catches a green,
/// the preferred speed is returned with the unavoidable expected wait.
///
/// # Panics
/// Panics when the speed band is empty/non-positive or the distance is
/// negative.
pub fn green_window_advice(
    distance_m: f64,
    preferred_kmh: f64,
    (min_kmh, max_kmh): (f64, f64),
    plan: &PhasePlan,
    now: Timestamp,
) -> GreenAdvice {
    assert!(distance_m >= 0.0, "distance must be non-negative");
    assert!(0.0 < min_kmh && min_kmh <= max_kmh, "speed band must satisfy 0 < min <= max");
    let preferred = preferred_kmh.clamp(min_kmh, max_kmh);

    let arrival_after = |kmh: f64| -> i64 {
        if distance_m == 0.0 {
            0
        } else {
            (distance_m / (kmh / 3.6)).round() as i64
        }
    };
    let cruise_arrival = now.offset(arrival_after(preferred));

    // Cruising already catches a green: keep the preferred speed.
    if plan.state_at(cruise_arrival) == LightState::Green {
        return GreenAdvice {
            target_speed_kmh: preferred,
            arrive_at: cruise_arrival,
            expected_wait_s: 0.0,
            adjusted: false,
        };
    }

    // The reachable arrival window at the stop line.
    let earliest = now.offset(arrival_after(max_kmh));
    let latest = now.offset(arrival_after(min_kmh));

    // Scan arrival seconds from earliest to latest for a green instant,
    // preferring the one closest to the preferred-speed arrival (smallest
    // deviation from cruising).
    let mut best: Option<(i64, Timestamp)> = None; // (|Δ| from cruise arrival, t)
    let mut t = earliest;
    while t <= latest {
        if plan.state_at(t) == LightState::Green {
            let dev = (t.delta(cruise_arrival)).abs();
            if best.is_none_or(|(d, _)| dev < d) {
                best = Some((dev, t));
            }
        }
        t = t.offset(1);
    }

    match best {
        Some((_, arrive)) => {
            let travel = arrive.delta(now).max(1) as f64;
            let speed = (distance_m / travel * 3.6).clamp(min_kmh, max_kmh);
            GreenAdvice {
                target_speed_kmh: speed,
                arrive_at: arrive,
                expected_wait_s: 0.0,
                adjusted: true,
            }
        }
        None => GreenAdvice {
            target_speed_kmh: preferred,
            arrive_at: cruise_arrival,
            expected_wait_s: plan.wait_for_green(cruise_arrival) as f64,
            adjusted: false,
        },
    }
}

/// Speed plan for a multi-intersection corridor.
#[derive(Debug, Clone, PartialEq)]
pub struct CorridorPlan {
    /// Advice per segment of the route, in travel order.
    pub legs: Vec<GreenAdvice>,
    /// Expected arrival at the route's end.
    pub arrival: Timestamp,
    /// Total expected red wait along the corridor, seconds.
    pub expected_wait_s: f64,
}

/// Plans speeds along a whole route (a "green wave" ride): each leg gets
/// a [`green_window_advice`] for its downstream light, with the clock
/// propagated through expected waits. The final leg has no light to catch
/// and is driven at the preferred speed.
pub fn plan_corridor(
    world: &crate::world::NavWorld,
    route: &[taxilight_roadnet::graph::SegmentId],
    depart: Timestamp,
    preferred_kmh: f64,
    band: (f64, f64),
) -> CorridorPlan {
    let mut clock = depart;
    let mut legs = Vec::with_capacity(route.len());
    let mut total_wait = 0.0;
    for (k, &seg_id) in route.iter().enumerate() {
        let seg = world.net.segment(seg_id);
        let last = k + 1 == route.len();
        let light_plan = if last {
            None
        } else {
            world
                .net
                .light_of_segment(seg_id)
                .and_then(|l| world.signals.schedule(l))
                .map(|s| s.plan_at(clock))
        };
        let advice = match light_plan {
            Some(plan) => green_window_advice(seg.length_m, preferred_kmh, band, &plan, clock),
            None => {
                let cruise = preferred_kmh.clamp(band.0, band.1);
                let drive = (seg.length_m / (cruise / 3.6)).round() as i64;
                GreenAdvice {
                    target_speed_kmh: cruise,
                    arrive_at: clock.offset(drive),
                    expected_wait_s: 0.0,
                    adjusted: false,
                }
            }
        };
        clock = advice.arrive_at.offset(advice.expected_wait_s.round() as i64);
        total_wait += advice.expected_wait_s;
        legs.push(advice);
    }
    CorridorPlan { legs, arrival: clock, expected_wait_s: total_wait }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Cycle 100 s, red [0, 50), green [50, 100), anchored at t = 0.
    fn plan() -> PhasePlan {
        PhasePlan::new(100, 50, 0)
    }

    #[test]
    fn cruise_already_green_is_untouched() {
        // 500 m at 60 km/h = 30 s → arrival at t = 80, green.
        let advice = green_window_advice(500.0, 60.0, (40.0, 70.0), &plan(), Timestamp(50));
        assert!(!advice.adjusted);
        assert_eq!(advice.target_speed_kmh, 60.0);
        assert_eq!(advice.expected_wait_s, 0.0);
        assert_eq!(plan().state_at(advice.arrive_at), LightState::Green);
    }

    #[test]
    fn slows_down_to_catch_next_green() {
        // From t = 0, 500 m at 60 km/h arrives at t = 30 — red until 50.
        // Slowing inside the band must push arrival to ≥ 50.
        let advice = green_window_advice(500.0, 60.0, (30.0, 70.0), &plan(), Timestamp(0));
        assert!(advice.adjusted);
        assert!(advice.target_speed_kmh < 60.0);
        assert!(advice.target_speed_kmh >= 30.0);
        assert_eq!(plan().state_at(advice.arrive_at), LightState::Green);
        assert_eq!(advice.expected_wait_s, 0.0);
    }

    #[test]
    fn speeds_up_to_catch_tail_of_green() {
        // From t = 40, 500 m at 45 km/h = 40 s → arrival t = 80... green.
        // Use an arrival in red instead: from t = 60, 500 m at 45 km/h
        // (40 s) → t = 100, red onset. Speeding up within the band reaches
        // the current green before it ends.
        let advice = green_window_advice(500.0, 45.0, (40.0, 70.0), &plan(), Timestamp(60));
        assert!(advice.adjusted);
        assert!(advice.target_speed_kmh > 45.0);
        assert_eq!(plan().state_at(advice.arrive_at), LightState::Green);
    }

    #[test]
    fn impossible_band_reports_expected_wait() {
        // Tight band: 100 m, arrival window [7.2 s, 8 s] from t = 0 — all
        // red ([0,50)), no green reachable.
        let advice = green_window_advice(100.0, 47.0, (45.0, 50.0), &plan(), Timestamp(0));
        assert!(!advice.adjusted);
        assert!(advice.expected_wait_s > 0.0);
        // The wait matches the plan's own arithmetic.
        assert_eq!(advice.expected_wait_s, plan().wait_for_green(advice.arrive_at) as f64);
    }

    #[test]
    fn zero_distance_is_immediate() {
        let advice = green_window_advice(0.0, 50.0, (30.0, 70.0), &plan(), Timestamp(60));
        assert_eq!(advice.arrive_at, Timestamp(60));
        assert_eq!(advice.expected_wait_s, 0.0);
    }

    #[test]
    fn prefers_smallest_deviation_from_cruise() {
        // Arrival window spans two green phases; the advisory should pick
        // the green second nearest the cruise arrival, not the earliest
        // reachable one.
        // 2000 m from t = 0: at 60 km/h → 120 s (red phase [100,150)).
        // Band 40–80 km/h → window [90 s, 180 s]. Greens: [50,100) and
        // [150,200). Nearest green to 120: t = 99 (|Δ| = 21) vs t = 150
        // (|Δ| = 30) → pick 99.
        let advice = green_window_advice(2000.0, 60.0, (40.0, 80.0), &plan(), Timestamp(0));
        assert!(advice.adjusted);
        assert_eq!(advice.arrive_at, Timestamp(99));
        assert!(advice.target_speed_kmh > 60.0);
    }

    #[test]
    #[should_panic(expected = "speed band")]
    fn rejects_bad_band() {
        green_window_advice(100.0, 50.0, (60.0, 50.0), &plan(), Timestamp(0));
    }

    mod corridor {
        use super::*;
        use crate::routing::{navigate, Strategy};
        use crate::travel::traverse;
        use crate::world::{NavWorld, WorldConfig};

        #[test]
        fn corridor_plan_reduces_waits_vs_fixed_speed() {
            // Across several worlds, following the corridor speed plan
            // must never wait longer (in expectation against the true
            // lights) than cruising at the preferred speed.
            let mut plan_better_or_equal = 0;
            let mut total = 0;
            for seed in 0..6 {
                let world = NavWorld::fig15(&WorldConfig::default(), seed);
                let depart = Timestamp::civil(2014, 12, 5, 9, 0, 0);
                let route = navigate(
                    &world,
                    world.node(0, 0),
                    world.node(4, 4),
                    depart,
                    Strategy::FreeFlow,
                )
                .unwrap()
                .route;
                let cruise = traverse(&world, &route, depart);
                let plan =
                    plan_corridor(&world, &route, depart, world.speed_kmh, (35.0, world.speed_kmh));
                total += 1;
                // The corridor plan's expected totals come from the same
                // schedule, so they are exact here.
                let plan_total = plan.arrival.delta(depart) as f64;
                if plan_total <= cruise.total_s() + 2.0 {
                    plan_better_or_equal += 1;
                }
            }
            assert!(
                plan_better_or_equal >= total - 1,
                "corridor plan lost in {}/{} worlds",
                total - plan_better_or_equal,
                total
            );
        }

        #[test]
        fn corridor_legs_match_route_length() {
            let world = NavWorld::fig15(&WorldConfig::default(), 2);
            let depart = Timestamp::civil(2014, 12, 5, 9, 0, 0);
            let route =
                navigate(&world, world.node(0, 0), world.node(2, 3), depart, Strategy::FreeFlow)
                    .unwrap()
                    .route;
            let plan = plan_corridor(&world, &route, depart, 50.0, (35.0, 60.0));
            assert_eq!(plan.legs.len(), route.len());
            assert!(plan.arrival > depart);
            assert!(plan.expected_wait_s >= 0.0);
            // Wait accounting is consistent.
            let sum: f64 = plan.legs.iter().map(|l| l.expected_wait_s).sum();
            assert!((sum - plan.expected_wait_s).abs() < 1e-9);
        }

        #[test]
        fn empty_route_is_trivial() {
            let world = NavWorld::fig15(&WorldConfig::default(), 3);
            let depart = Timestamp::civil(2014, 12, 5, 9, 0, 0);
            let plan = plan_corridor(&world, &[], depart, 50.0, (35.0, 60.0));
            assert!(plan.legs.is_empty());
            assert_eq!(plan.arrival, depart);
            assert_eq!(plan.expected_wait_s, 0.0);
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn advice_is_always_inside_band(dist in 50.0f64..3000.0,
                                            now in 0i64..500,
                                            cycle in 60u32..200,
                                            red_frac in 0.3f64..0.7) {
                let red = ((cycle as f64 * red_frac) as u32).clamp(1, cycle - 1);
                let plan = PhasePlan::new(cycle, red, 13);
                let advice = green_window_advice(dist, 55.0, (35.0, 75.0), &plan, Timestamp(now));
                prop_assert!(advice.target_speed_kmh >= 35.0 - 1e-9);
                prop_assert!(advice.target_speed_kmh <= 75.0 + 1e-9);
                // When adjusted, the promised arrival is green.
                if advice.adjusted {
                    prop_assert_eq!(plan.state_at(advice.arrive_at), LightState::Green);
                    prop_assert_eq!(advice.expected_wait_s, 0.0);
                }
            }
        }
    }
}
