//! The streaming promise, proven differentially: feeding the pipeline
//! through a bounded-memory [`RecordSource`] is **bit-identical** to the
//! in-memory path, for any chunk size, batch boundary, or interleaving.
//!
//! Mirrors `engine_equivalence.rs` (sharded == serial): one seeded
//! simulated city built once, every case re-runs an intake variant over
//! it and compares at the `f64::to_bits` level — `PartialEq` on floats
//! would hide `-0.0` vs `0.0` drift. Three layers are pinned:
//!
//! * `Preprocessor::preprocess_source` == `Preprocessor::preprocess`
//!   (same `PartitionedTraces`, same stats) and the engine outcome on top
//!   of both is bit-identical — including when the source is a
//!   [`CsvChunkReader`] decoding the feed from CSV bytes.
//! * `RealtimeIdentifier`: push-by-push == one giant `extend` ==
//!   `extend_source` at any chunk size — same `round_report()`, same
//!   schedules — across reorder-grace settings.
//! * The deterministic metrics the laps emit (preprocess reject-reason
//!   counters, realtime dedup/out-of-grace counters, the watermark-lag
//!   gauge) advance by identical deltas on every intake variant.

use std::io::Cursor;
use std::sync::OnceLock;

use proptest::prelude::*;
use taxilight_core::engine::{Identifier, IdentifyRequest};
use taxilight_core::pipeline::{IdentifyError, LightSchedule};
use taxilight_core::preprocess::{PartitionedTraces, PreprocessStats, Preprocessor};
use taxilight_core::realtime::{RealtimeIdentifier, RoundReport};
use taxilight_core::IdentifyConfig;
use taxilight_roadnet::generators::{grid_city, GeneratedCity, GridConfig};
use taxilight_roadnet::graph::LightId;
use taxilight_sim::lights::{IntersectionPlan, PhasePlan, SignalMap};
use taxilight_sim::sim::{SimConfig, Simulator};
use taxilight_trace::csv::encode_log;
use taxilight_trace::record::TaxiRecord;
use taxilight_trace::source::{CsvChunkReader, MemorySource, RecordSource};
use taxilight_trace::stream::TraceLog;
use taxilight_trace::time::Timestamp;

struct World {
    city: GeneratedCity,
    /// The live feed: chronological arrival order, not per-taxi grouping.
    feed: Vec<TaxiRecord>,
    csv: String,
    at: Timestamp,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let city =
            grid_city(&GridConfig { rows: 3, cols: 3, spacing_m: 600.0, ..GridConfig::default() });
        let mut signals = SignalMap::new();
        let plan = PhasePlan::new(92, 41, 9);
        for &ix in &city.intersections {
            signals.install_intersection(&city.net, ix, IntersectionPlan { ns: plan });
        }
        let start = Timestamp::civil(2014, 12, 5, 7, 30, 0);
        let mut sim = Simulator::new(
            &city.net,
            &signals,
            SimConfig {
                taxi_count: 120,
                start,
                seed: 58,
                hourly_activity: [1.0; 24],
                ..SimConfig::default()
            },
        );
        sim.run(5000);
        let (log, fleet) = sim.into_log();
        let mut feed = log.into_records();
        feed.sort_by_key(|r| r.time);
        let csv = encode_log(&feed, &fleet).unwrap();
        World { city, feed, csv, at: start.offset(5000) }
    })
}

/// Exact bit patterns of an engine result set (copied from
/// `engine_equivalence.rs` — the comparator itself is part of the proof).
fn bits(
    results: &[(LightId, Result<LightSchedule, IdentifyError>)],
) -> Vec<(u32, Result<[u64; 5], String>)> {
    results
        .iter()
        .map(|(l, r)| {
            (
                l.0,
                r.as_ref()
                    .map(|s| {
                        [
                            s.cycle_s.to_bits(),
                            s.red_s.to_bits(),
                            s.green_s.to_bits(),
                            s.red_start_s.to_bits(),
                            s.snr.to_bits(),
                        ]
                    })
                    .map_err(|e| format!("{e:?}")),
            )
        })
        .collect()
}

/// Exact bit patterns of a realtime engine's current schedules.
fn schedule_bits(engine: &RealtimeIdentifier) -> Vec<(u32, [u64; 5])> {
    engine
        .schedules()
        .map(|(l, s)| {
            (
                l.0,
                [
                    s.cycle_s.to_bits(),
                    s.red_s.to_bits(),
                    s.green_s.to_bits(),
                    s.red_start_s.to_bits(),
                    s.snr.to_bits(),
                ],
            )
        })
        .collect()
}

/// Per-light engine outcome as bit patterns (`Err` keeps the message).
type OutcomeBits = Vec<(u32, Result<[u64; 5], String>)>;

/// One realtime lap's result: round report plus per-light schedule bits.
type LapResult = (RoundReport, Vec<(u32, [u64; 5])>);

/// Runs the batch engine over a partition; the downstream half of the
/// preprocess differential.
fn outcome_bits(parts: &PartitionedTraces) -> OutcomeBits {
    let w = world();
    let engine = Identifier::with_defaults(&w.city.net);
    bits(&engine.run(parts, &IdentifyRequest::all(w.at)).results)
}

fn in_memory() -> (PartitionedTraces, PreprocessStats) {
    let w = world();
    let pre = Preprocessor::new(&w.city.net, IdentifyConfig::default());
    pre.preprocess(&mut TraceLog::from_records(w.feed.clone()))
}

fn streamed(src: &mut impl RecordSource) -> (PartitionedTraces, PreprocessStats) {
    let w = world();
    let pre = Preprocessor::new(&w.city.net, IdentifyConfig::default());
    pre.preprocess_source(src).expect("in-memory sources cannot fail")
}

fn assert_parts_identical(a: &PartitionedTraces, b: &PartitionedTraces, what: &str) {
    assert_eq!(a.lights_with_data(), b.lights_with_data(), "{what}: light sets diverged");
    assert_eq!(a.total(), b.total(), "{what}: totals diverged");
    for light in a.lights_with_data() {
        let (oa, ob) = (a.observations(light), b.observations(light));
        assert_eq!(oa.len(), ob.len(), "{what}: bucket {light:?} length diverged");
        for (x, y) in oa.iter().zip(ob) {
            assert_eq!(x.taxi, y.taxi, "{what}: {light:?}");
            assert_eq!(x.time, y.time, "{what}: {light:?}");
            assert_eq!(x.speed_kmh.to_bits(), y.speed_kmh.to_bits(), "{what}: {light:?}");
            assert_eq!(x.dist_to_stop_m.to_bits(), y.dist_to_stop_m.to_bits(), "{what}: {light:?}");
            assert_eq!(x.passenger, y.passenger, "{what}: {light:?}");
        }
    }
}

#[test]
fn fixture_is_nontrivial() {
    let (parts, stats) = in_memory();
    assert!(stats.partitioned > 1000, "fixture too sparse: {stats:?}");
    assert!(parts.lights_with_data().len() >= 2);
    let identified = outcome_bits(&parts).iter().filter(|(_, r)| r.is_ok()).count();
    assert!(identified >= 2, "fixture identified only {identified} lights");
}

#[test]
fn preprocess_source_bit_identical_for_selected_chunks() {
    let w = world();
    let (want_parts, want_stats) = in_memory();
    let want_outcome = outcome_bits(&want_parts);
    for chunk in [1usize, 7, 256, 10_000, usize::MAX] {
        let (parts, stats) = streamed(&mut MemorySource::new(&w.feed, chunk.min(w.feed.len() + 1)));
        assert_eq!(stats, want_stats, "stats diverged at chunk_records={chunk}");
        assert_parts_identical(&parts, &want_parts, &format!("chunk_records={chunk}"));
        assert_eq!(outcome_bits(&parts), want_outcome, "outcome diverged at {chunk}");
    }
}

#[test]
fn csv_chunked_decode_bit_identical_to_in_memory_decode() {
    let w = world();
    // Reference: whole-text decode, then the in-memory pass. The decoder
    // assigns taxi ids in feed-first-seen order, so both sides must use
    // the *decoded* records, not the simulator's.
    let mut fleet = taxilight_trace::record::Fleet::new();
    let (decoded, errors) = taxilight_trace::csv::decode_log(&w.csv, &mut fleet);
    assert!(errors.is_empty(), "fixture CSV must be clean");
    let pre = Preprocessor::new(&w.city.net, IdentifyConfig::default());
    let (want_parts, want_stats) = pre.preprocess(&mut TraceLog::from_records(decoded));
    let want_outcome = outcome_bits(&want_parts);
    for chunk_bytes in [1usize, 53, 4096, 1 << 22] {
        let mut src = CsvChunkReader::new(Cursor::new(w.csv.as_bytes()), chunk_bytes);
        let (parts, stats) = streamed(&mut src);
        assert_eq!(stats, want_stats, "stats diverged at chunk_bytes={chunk_bytes}");
        assert_parts_identical(&parts, &want_parts, &format!("chunk_bytes={chunk_bytes}"));
        assert_eq!(outcome_bits(&parts), want_outcome, "outcome diverged at {chunk_bytes}");
    }
}

/// One realtime lap; `chunk_records = None` means push record-by-record,
/// `Some(0)` means one giant `extend`, `Some(n)` means `extend_source`
/// over a [`MemorySource`] of that chunk size.
fn realtime_lap(grace: u32, chunk_records: Option<usize>) -> LapResult {
    let w = world();
    let mut engine =
        RealtimeIdentifier::builder(&w.city.net).reorder_grace_s(grace).build().unwrap();
    match chunk_records {
        None => {
            for r in &w.feed {
                engine.push(r);
            }
        }
        Some(0) => engine.extend(w.feed.iter()),
        Some(n) => {
            let consumed = engine.extend_source(&mut MemorySource::new(&w.feed, n)).unwrap();
            assert_eq!(consumed, w.feed.len() as u64);
        }
    }
    (engine.round_report(), schedule_bits(&engine))
}

/// The satellite pin: one-record-at-a-time, one-big-batch and chunked
/// streaming agree on every observable — rounds, watermark lag, dedup
/// and out-of-grace counts, and every schedule bit — across grace
/// settings (grace changes *which* rounds fire, so each setting is its
/// own fixture).
#[test]
fn realtime_intake_variants_agree_across_grace_settings() {
    for grace in [0u32, 45, 300] {
        let (push_report, push_scheds) = realtime_lap(grace, None);
        assert!(push_report.rounds >= 1, "no rounds at grace={grace}");
        assert!(!push_scheds.is_empty(), "no schedules at grace={grace}");
        for chunk in [Some(0), Some(1), Some(13), Some(997)] {
            let (report, scheds) = realtime_lap(grace, chunk);
            assert_eq!(report, push_report, "report diverged: grace={grace} chunk={chunk:?}");
            assert_eq!(scheds, push_scheds, "schedules diverged: grace={grace} chunk={chunk:?}");
        }
    }
}

/// The deterministic metrics the laps emit advance by identical deltas
/// whichever intake variant runs — the registry view of equivalence.
#[test]
fn deterministic_metric_deltas_are_intake_invariant() {
    use taxilight_obs::metrics::{self, MetricClass};
    let reg = metrics::global();
    let class = MetricClass::Deterministic;
    let reason = |r| {
        reg.counter(
            "taxilight_preprocess_records_total",
            &[("reason", r)],
            class,
            "Records by map-matching outcome",
        )
    };
    let counters = [
        reason("implausible"),
        reason("unmatched"),
        reason("unsignalized"),
        reason("partitioned"),
        reg.counter(
            "taxilight_realtime_records_deduped_total",
            &[],
            class,
            "Matched records dropped as (taxi, timestamp) duplicates",
        ),
        reg.counter(
            "taxilight_realtime_out_of_grace_total",
            &[],
            class,
            "Matched records dropped for arriving after their window's round",
        ),
    ];
    let snap = |c: &[metrics::Counter]| c.iter().map(|x| x.get()).collect::<Vec<u64>>();
    let delta = |before: &[u64], after: &[u64]| {
        before.iter().zip(after).map(|(b, a)| a - b).collect::<Vec<u64>>()
    };

    let before = snap(&counters);
    let _ = realtime_lap(45, Some(0));
    let batch_delta = delta(&before, &snap(&counters));

    let before = snap(&counters);
    let _ = realtime_lap(45, Some(17));
    let chunked_delta = delta(&before, &snap(&counters));

    let before = snap(&counters);
    let _ = realtime_lap(45, None);
    let push_delta = delta(&before, &snap(&counters));

    assert_eq!(batch_delta, chunked_delta, "chunked lap shifted the metrics");
    assert_eq!(batch_delta, push_delta, "push lap shifted the metrics");
    assert!(batch_delta.iter().sum::<u64>() > 0, "laps emitted no metrics at all");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary chunk sizes: the preprocess differential, engine outcome
    /// included, holds for every batch split.
    #[test]
    fn preprocess_source_bit_identical_for_any_chunk(chunk in 1usize..5_000) {
        static WANT: OnceLock<(OutcomeBits, PreprocessStats)> = OnceLock::new();
        let (want_outcome, want_stats) = WANT.get_or_init(|| {
            let (parts, stats) = in_memory();
            (outcome_bits(&parts), stats)
        });
        let w = world();
        let (parts, stats) = streamed(&mut MemorySource::new(&w.feed, chunk));
        prop_assert_eq!(&stats, want_stats, "stats diverged at chunk_records={}", chunk);
        prop_assert_eq!(&outcome_bits(&parts), want_outcome, "outcome diverged at {}", chunk);
    }

    /// Arbitrary chunk sizes through the realtime engine: rounds fire at
    /// the same instants with the same results whatever the batch split.
    #[test]
    fn realtime_streaming_bit_identical_for_any_chunk(
        chunk in 1usize..3_000,
        grace_sel in 0usize..3,
    ) {
        let grace = [0u32, 45, 300][grace_sel];
        static WANT: OnceLock<std::sync::Mutex<std::collections::HashMap<u32, LapResult>>> =
            OnceLock::new();
        let cache = WANT.get_or_init(Default::default);
        let want = {
            let mut map = cache.lock().unwrap();
            map.entry(grace).or_insert_with(|| realtime_lap(grace, Some(0))).clone()
        };
        let (report, scheds) = realtime_lap(grace, Some(chunk));
        prop_assert_eq!(report, want.0, "report diverged at chunk={} grace={}", chunk, grace);
        prop_assert_eq!(scheds, want.1, "schedules diverged at chunk={} grace={}", chunk, grace);
    }
}
