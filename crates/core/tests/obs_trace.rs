//! End-to-end observability: an instrumented engine + realtime run under
//! an installed [`ChromeTraceWriter`] must produce a trace that parses as
//! Chrome trace-event JSON, validates (strictly nested begin/end pairs
//! per track), and contains the pipeline's span vocabulary; the metrics
//! registry must snapshot to valid, stable JSON carrying the counters the
//! run incremented.
//!
//! One `#[test]` only: the subscriber is process-global and installable
//! once, so this whole scenario shares a single test binary.

use std::sync::Arc;

use taxilight_core::engine::{Identifier, IdentifyRequest};
use taxilight_core::realtime::RealtimeIdentifier;
use taxilight_core::{IdentifyConfig, Preprocessor};
use taxilight_obs::chrome::ChromeTraceWriter;
use taxilight_obs::json::{deterministic_section, parse, validate_chrome_trace, validate_metrics};
use taxilight_roadnet::generators::{grid_city, GridConfig};
use taxilight_sim::lights::{IntersectionPlan, PhasePlan, SignalMap};
use taxilight_sim::sim::{SimConfig, Simulator};
use taxilight_trace::time::Timestamp;

#[test]
fn instrumented_run_produces_valid_trace_and_metrics() {
    let city =
        grid_city(&GridConfig { rows: 3, cols: 3, spacing_m: 600.0, ..GridConfig::default() });
    let mut signals = SignalMap::new();
    let plan = PhasePlan::new(96, 44, 9);
    for &ix in &city.intersections {
        signals.install_intersection(&city.net, ix, IntersectionPlan { ns: plan });
    }
    let start = Timestamp::civil(2014, 12, 5, 10, 0, 0);
    let mut sim = Simulator::new(
        &city.net,
        &signals,
        SimConfig {
            taxi_count: 90,
            start,
            seed: 7,
            hourly_activity: [1.0; 24],
            ..SimConfig::default()
        },
    );
    sim.run(3600);
    let (mut log, _) = sim.into_log();

    let writer = Arc::new(ChromeTraceWriter::new());
    taxilight_obs::set_subscriber(writer.clone()).expect("first install in this process");
    taxilight_obs::set_track_name(|| "test-main".to_string());

    // Batch path: preprocess + a sharded engine run (worker tracks).
    let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
    let (parts, stats) = pre.preprocess(&mut log);
    assert!(stats.partitioned > 0, "fixture produced no matched records");
    let engine = Identifier::with_defaults(&city.net);
    let at = start.offset(3600);
    let outcome = engine.run(&parts, &IdentifyRequest::all(at).sharded(8, 3));
    assert!(outcome.ok_count() >= 1, "fixture identified nothing");

    // Streaming path: replay the same feed through the realtime engine.
    let mut records = log.into_records();
    records.sort_by_key(|r| r.time);
    let mut rt = RealtimeIdentifier::new(&city.net, IdentifyConfig::default(), 600);
    rt.extend(records.iter());
    rt.reidentify(at);
    assert!(rt.round_report().rounds >= 1);

    // The trace must parse, validate, and use the pipeline vocabulary.
    let json = writer.to_json();
    let doc = parse(&json).expect("trace is valid JSON");
    let summary = validate_chrome_trace(&doc).expect("trace validates");
    assert!(summary.spans > 0 && summary.events > 0);
    assert!(summary.tracks >= 2, "sharded run should emit on worker tracks");
    assert!(summary.named_tracks >= 1, "worker tracks should be named");
    for name in [
        "\"engine.run\"",
        "\"engine.shard\"",
        "\"engine.merge\"",
        "\"light.identify\"",
        "\"stage.cycle\"",
        "\"stage.red\"",
        "\"stage.change\"",
        "\"signal.resample\"",
        "\"signal.dft\"",
        "\"superpose.profile\"",
        "\"change_point.search\"",
        "\"realtime.round\"",
        "\"light.done\"",
        "\"workspace.checkout\"",
        "\"engine-worker-0\"",
    ] {
        assert!(json.contains(name), "trace is missing {name}");
    }

    // The metrics snapshot must validate, be reproducible call-to-call,
    // and carry the counters this run incremented in the right sections.
    let snap = taxilight_obs::metrics::global().snapshot_json();
    let mdoc = parse(&snap).expect("metrics snapshot is valid JSON");
    validate_metrics(&mdoc).expect("metrics snapshot validates");
    assert_eq!(snap, taxilight_obs::metrics::global().snapshot_json());
    let det = deterministic_section(&snap).expect("deterministic section present");
    assert!(det.contains("taxilight_preprocess_records_total"));
    assert!(det.contains("taxilight_realtime_watermark_lag_s"));
    assert!(
        !det.contains("taxilight_plan_cache_lookups_total"),
        "plan-cache counters are scheduling-dependent and must stay volatile"
    );
    assert!(snap.contains("taxilight_plan_cache_lookups_total"));

    // Prometheus exposition of the same registry stays consistent.
    let prom = taxilight_obs::metrics::global().prometheus_text();
    assert!(prom.contains("# TYPE taxilight_preprocess_records_total counter"));
    assert!(prom.contains("taxilight_realtime_watermark_lag_s"));
}
