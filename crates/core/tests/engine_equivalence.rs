//! The engine's one hard promise: sharded execution is **bit-identical**
//! to serial, for any shard count and any thread count (including 1).
//!
//! The fixture is a seeded simulated city, built once; every case re-runs
//! the full engine over it and compares schedules at the `f64::to_bits`
//! level — `PartialEq` on floats would hide `-0.0` vs `0.0` drift.

use std::sync::OnceLock;

use proptest::prelude::*;
use taxilight_core::engine::{ExecMode, Identifier, IdentifyRequest};
use taxilight_core::pipeline::{IdentifyError, LightSchedule};
use taxilight_core::preprocess::{PartitionedTraces, Preprocessor};
use taxilight_core::IdentifyConfig;
use taxilight_roadnet::generators::{grid_city, GeneratedCity, GridConfig};
use taxilight_roadnet::graph::LightId;
use taxilight_sim::lights::{IntersectionPlan, PhasePlan, SignalMap};
use taxilight_sim::sim::{SimConfig, Simulator};
use taxilight_trace::time::Timestamp;

struct World {
    city: GeneratedCity,
    parts: PartitionedTraces,
    at: Timestamp,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let city =
            grid_city(&GridConfig { rows: 3, cols: 3, spacing_m: 600.0, ..GridConfig::default() });
        let mut signals = SignalMap::new();
        let plan = PhasePlan::new(100, 45, 10);
        for &ix in &city.intersections {
            signals.install_intersection(&city.net, ix, IntersectionPlan { ns: plan });
        }
        let start = Timestamp::civil(2014, 12, 5, 14, 0, 0);
        let cfg = SimConfig {
            taxi_count: 90,
            start,
            seed: 42,
            hourly_activity: [1.0; 24],
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&city.net, &signals, cfg);
        sim.run(3600);
        let (mut log, _) = sim.into_log();
        let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
        let (parts, _) = pre.preprocess(&mut log);
        World { city, parts, at: start.offset(3600) }
    })
}

/// Collapses one result set into exact bit patterns, so comparing two runs
/// tolerates nothing.
fn bits(
    results: &[(LightId, Result<LightSchedule, IdentifyError>)],
) -> Vec<(u32, Result<[u64; 5], String>)> {
    results
        .iter()
        .map(|(l, r)| {
            (
                l.0,
                r.as_ref()
                    .map(|s| {
                        [
                            s.cycle_s.to_bits(),
                            s.red_s.to_bits(),
                            s.green_s.to_bits(),
                            s.red_start_s.to_bits(),
                            s.snr.to_bits(),
                        ]
                    })
                    .map_err(|e| format!("{e:?}")),
            )
        })
        .collect()
}

fn run(exec: ExecMode) -> Vec<(LightId, Result<LightSchedule, IdentifyError>)> {
    let w = world();
    let engine = Identifier::with_defaults(&w.city.net);
    let req = IdentifyRequest { exec, ..IdentifyRequest::all(w.at) };
    engine.run(&w.parts, &req).results
}

#[test]
fn fixture_identifies_lights() {
    let serial = run(ExecMode::Serial);
    assert!(serial.iter().filter(|(_, r)| r.is_ok()).count() >= 2, "fixture too sparse");
    // Ascending id order is part of the contract.
    assert!(serial.windows(2).all(|w| w[0].0 .0 < w[1].0 .0));
}

#[test]
fn auto_sharded_matches_serial() {
    assert_eq!(bits(&run(ExecMode::Serial)), bits(&run(ExecMode::default())));
}

#[test]
fn single_thread_single_shard_matches_serial() {
    let serial = bits(&run(ExecMode::Serial));
    assert_eq!(serial, bits(&run(ExecMode::Sharded { shards: 1, threads: 1 })));
    assert_eq!(serial, bits(&run(ExecMode::Sharded { shards: 1, threads: 8 })));
    assert_eq!(serial, bits(&run(ExecMode::Sharded { shards: 16, threads: 1 })));
}

#[test]
fn sharded_stage_and_plan_totals_merge_like_serial() {
    let w = world();
    let serial =
        Identifier::with_defaults(&w.city.net).run(&w.parts, &IdentifyRequest::all(w.at).serial());
    let sharded = Identifier::with_defaults(&w.city.net)
        .run(&w.parts, &IdentifyRequest::all(w.at).sharded(16, 4));
    // Same per-light work → exactly the same number of plan-cache lookups,
    // regardless of how many worker workspaces the lookups spread over
    // (the hit/miss split differs — each cold workspace misses once per
    // shape — but the total is execution-invariant).
    assert_eq!(serial.stats.plan_cache.total(), sharded.stats.plan_cache.total());
    // Stage timings merge in integer nanoseconds, so the sharded total is
    // a true sum over workers: every stage must be positive, and the
    // cross-mode totals must agree within a generous factor — wall-clock
    // noise, not merge error, is the only admissible source of drift.
    let (sc, sr, sch) = serial.stats.stage_timings.as_nanos();
    let (pc, pr, pch) = sharded.stats.stage_timings.as_nanos();
    for v in [sc, sr, sch, pc, pr, pch] {
        assert!(v > 0, "a stage accumulated zero time: {:?} {:?}", (sc, sr, sch), (pc, pr, pch));
    }
    let s = serial.stats.stage_timings.total_s();
    let p = sharded.stats.stage_timings.total_s();
    assert!(p < s * 4.0 + 0.5 && s < p * 4.0 + 0.5, "serial {s} s vs sharded {p} s");
}

#[test]
fn more_shards_than_lights_is_fine() {
    let serial = bits(&run(ExecMode::Serial));
    assert_eq!(serial, bits(&run(ExecMode::Sharded { shards: 997, threads: 3 })));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary shard × thread grids, all bit-identical to serial.
    #[test]
    fn sharded_bit_identical_to_serial(shards in 1usize..=33, threads in 1usize..=9) {
        let serial = bits(&run(ExecMode::Serial));
        let sharded = bits(&run(ExecMode::Sharded { shards, threads }));
        prop_assert_eq!(serial, sharded, "diverged at shards={} threads={}", shards, threads);
    }
}
