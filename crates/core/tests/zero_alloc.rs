//! Counting-allocator proof that the steady-state cycle/DFT path is
//! allocation-free.
//!
//! Gated behind the test-only `alloc-counter` feature so the global allocator
//! swap never leaks into ordinary test runs:
//!
//! ```text
//! cargo test -p taxilight-core --features alloc-counter --test zero_alloc
//! ```
//!
//! The test warms an [`IdentifyWorkspace`] once per signal shape (growing
//! scratch buffers and populating the FFT plan cache), then asserts that a
//! second identically-shaped call performs **zero** heap allocations. Covered
//! shapes: the paper's 3600 s window on the exact-length path (Bluestein,
//! m = 8192), a power-of-two 2048 s window (radix-2), and the 3600 s window on
//! the [`SpectrumPath::PaddedPow2`] fast path.

#![cfg(feature = "alloc-counter")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use taxilight_core::{IdentifyConfig, IdentifyWorkspace, SpectrumPath};

/// Wraps the system allocator and counts every allocation-producing call.
/// Deallocations are not counted: the invariant under test is "no new heap
/// traffic", and `dealloc` cannot create any.
struct CountingAllocator;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Deterministic sparse speed trace with a planted red/green square wave.
///
/// Mimics what [`crate::cycle::speed_samples`] produces for a light with a
/// `cycle_s` cycle and `red_s` red phase: slow readings during red, fast ones
/// during green, with LCG jitter on both the sample clock and the speeds so
/// the periodogram sees a realistic (non-degenerate) signal.
fn planted_speed_trace(window_s: usize, cycle_s: f64, red_s: f64, seed: u64) -> Vec<(f64, f64)> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / ((1u64 << 31) as f64)
    };
    let mut out = Vec::new();
    let mut t = 0.0f64;
    while t < window_s as f64 {
        let phase = t % cycle_s;
        let speed = if phase < red_s { 2.0 + 3.0 * next() } else { 28.0 + 8.0 * next() };
        out.push((t, speed));
        t += 4.0 + 5.0 * next();
    }
    out
}

#[test]
fn steady_state_cycle_path_is_allocation_free() {
    let exact = IdentifyConfig::default();
    let padded = IdentifyConfig { spectrum: SpectrumPath::PaddedPow2, ..IdentifyConfig::default() };

    // (label, window length, config): Bluestein exact-length, radix-2
    // power-of-two, and the padded-pow2 fast path.
    let shapes: [(&str, usize, &IdentifyConfig); 3] =
        [("exact-3600", 3600, &exact), ("pow2-2048", 2048, &exact), ("padded-3600", 3600, &padded)];

    let mut ws = IdentifyWorkspace::new();
    for (label, window, cfg) in shapes {
        let samples = planted_speed_trace(window, 98.0, 39.0, 0xA11C);

        // Warmup: grows every scratch buffer and caches the FFT plans for
        // this shape. Allocations here are expected and uncounted.
        let warm = ws
            .cycle_from_samples(&samples, window, cfg)
            .unwrap_or_else(|e| panic!("{label}: warmup identification failed: {e}"));

        let before = alloc_calls();
        let est = ws
            .cycle_from_samples(&samples, window, cfg)
            .unwrap_or_else(|e| panic!("{label}: steady-state identification failed: {e}"));
        let after = alloc_calls();

        assert_eq!(est.cycle_s.to_bits(), warm.cycle_s.to_bits(), "{label}: reuse changed result");
        assert_eq!(
            after - before,
            0,
            "{label}: steady-state cycle/DFT path allocated {} time(s)",
            after - before
        );
    }
}

#[test]
fn steady_state_holds_across_alternating_shapes() {
    // Alternating between two shapes must also stay allocation-free once both
    // are warm: buffers only ever grow, and the plan cache keys on length.
    let cfg = IdentifyConfig::default();
    let small = planted_speed_trace(1200, 76.0, 25.0, 7);
    let large = planted_speed_trace(3600, 112.0, 48.0, 11);

    let mut ws = IdentifyWorkspace::new();
    ws.cycle_from_samples(&small, 1200, &cfg).unwrap();
    ws.cycle_from_samples(&large, 3600, &cfg).unwrap();

    let before = alloc_calls();
    for _ in 0..4 {
        ws.cycle_from_samples(&small, 1200, &cfg).unwrap();
        ws.cycle_from_samples(&large, 3600, &cfg).unwrap();
    }
    let after = alloc_calls();
    assert_eq!(after - before, 0, "alternating warm shapes allocated {} time(s)", after - before);
}
