//! Pipeline configuration.

use std::fmt;

use taxilight_signal::interpolate::Method;
use taxilight_signal::periodogram::{PeriodBand, SpectrumPath};

/// Which spectral estimator drives cycle-length identification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleMethod {
    /// The paper's DFT (Eqs. 1–2), optionally fold-validated.
    Dft,
    /// Time-domain autocorrelation peak — an alternative estimator kept
    /// for the method ablation.
    Autocorrelation,
}

/// A degenerate [`IdentifyConfig`] value caught by [`IdentifyConfigBuilder::build`]
/// (or [`IdentifyConfig::validate`]) before it can panic deep inside
/// `cycle.rs`/`red.rs`.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The analysis window is zero seconds.
    ZeroWindow,
    /// The period band is inverted, zero-width, or non-positive.
    InvalidBand {
        /// Offending lower bound (seconds).
        min_period: f64,
        /// Offending upper bound (seconds).
        max_period: f64,
    },
    /// A threshold that must be a finite, positive number is not.
    NonFiniteThreshold {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// `min_samples` of zero would accept empty windows.
    ZeroMinSamples,
    /// Fold validation is enabled but the candidate list is empty.
    ZeroFoldCandidates,
    /// A re-identification interval of zero seconds would schedule an
    /// infinite round loop (realtime builder validation).
    ZeroInterval,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroWindow => write!(f, "window_s must be positive"),
            ConfigError::InvalidBand { min_period, max_period } => {
                write!(f, "invalid period band [{min_period}, {max_period}]")
            }
            ConfigError::NonFiniteThreshold { field, value } => {
                write!(f, "{field} must be a finite positive number, got {value}")
            }
            ConfigError::ZeroMinSamples => write!(f, "min_samples must be at least 1"),
            ConfigError::ZeroFoldCandidates => {
                write!(f, "fold_candidates must be at least 1 when fold_validate is on")
            }
            ConfigError::ZeroInterval => {
                write!(f, "interval_s must be positive")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// All tunables of the identification pipeline, with defaults matching the
/// paper's setup.
#[derive(Debug, Clone)]
pub struct IdentifyConfig {
    /// Analysis window fed to the frequency-domain step, seconds. The paper
    /// uses "a time period of data (e.g., the past 30 minutes)"; its worked
    /// example (Fig. 6) uses one hour.
    pub window_s: u32,
    /// Map-matching search radius, meters (urban GPS errors reach 100 m).
    pub match_radius_m: f64,
    /// Maximum heading difference for a segment to be orientation
    /// compatible, degrees (Fig. 5 rule).
    pub max_heading_diff_deg: f64,
    /// Only records within this distance of the stop line enter the
    /// frequency analysis — the light modulates speed near the queue.
    pub influence_radius_m: f64,
    /// Period search band for the cycle identifier.
    pub band: PeriodBand,
    /// Resampling method for the sparse speed signal (paper: cubic spline).
    pub interpolation: Method,
    /// Two fixes closer than this are "the same position" for stop
    /// detection, meters.
    pub stationary_threshold_m: f64,
    /// Minimum samples inside the window before attempting cycle
    /// identification.
    pub min_samples: usize,
    /// Minimum periodogram SNR to accept a cycle estimate.
    pub min_snr: f64,
    /// Use the perpendicular-road enhancement when the primary road's data
    /// is sparser than `enhance_below_samples`.
    pub enhance_below_samples: usize,
    /// Refine the DFT peak with parabolic interpolation (extension beyond
    /// the paper's integer-bin estimator).
    pub refine_peak: bool,
    /// Validate DFT candidate periods by epoch-folding contrast on the raw
    /// samples and keep the best-scoring one (preferring the fundamental).
    /// The paper's Eq. (2) takes the raw spectral argmax, which at taxi
    /// densities of 1–3 samples per cycle frequently locks onto
    /// low-frequency congestion noise; fold validation fixes exactly those
    /// cases while leaving dense-data results untouched. Disable to ablate
    /// back to the paper's raw estimator.
    pub fold_validate: bool,
    /// Number of top DFT bins considered as candidates when fold
    /// validation is on.
    pub fold_candidates: usize,
    /// Spectral estimator for the cycle length.
    pub cycle_method: CycleMethod,
    /// After the per-light pass, reconcile each intersection's cycle
    /// estimates: all lights of one crossroad share the cycle length
    /// (paper Sec. V-B), so deviating lights are re-identified with the
    /// search band pinned near the intersection consensus.
    pub intersection_consensus: bool,
    /// How the Eq. (1) spectrum is evaluated. The default keeps the paper's
    /// exact-length transform; `SpectrumPath::PaddedPow2` zero-pads to the
    /// next power of two for a single radix-2 pass (faster, slightly
    /// different bin grid — validated by the eval gates, not bit-identity).
    pub spectrum: SpectrumPath,
}

impl Default for IdentifyConfig {
    fn default() -> Self {
        IdentifyConfig {
            window_s: 3600,
            match_radius_m: 100.0,
            max_heading_diff_deg: 45.0,
            influence_radius_m: 150.0,
            band: PeriodBand::TRAFFIC_LIGHTS,
            interpolation: Method::CubicSpline,
            stationary_threshold_m: 15.0,
            min_samples: 12,
            min_snr: 1.2,
            enhance_below_samples: 120,
            refine_peak: false,
            fold_validate: true,
            fold_candidates: 10,
            cycle_method: CycleMethod::Dft,
            intersection_consensus: true,
            spectrum: SpectrumPath::Exact,
        }
    }
}

impl IdentifyConfig {
    /// Starts a validating builder pre-loaded with the paper defaults.
    pub fn builder() -> IdentifyConfigBuilder {
        IdentifyConfigBuilder { cfg: IdentifyConfig::default() }
    }

    /// Checks every field for degenerate values, returning the first
    /// violation. A config assembled field-by-field (the pre-builder style)
    /// can be checked retroactively with this.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.window_s == 0 {
            return Err(ConfigError::ZeroWindow);
        }
        let band = self.band;
        if !(band.min_period.is_finite() && band.max_period.is_finite())
            || band.min_period <= 0.0
            || band.max_period <= band.min_period
        {
            return Err(ConfigError::InvalidBand {
                min_period: band.min_period,
                max_period: band.max_period,
            });
        }
        for (field, value) in [
            ("match_radius_m", self.match_radius_m),
            ("max_heading_diff_deg", self.max_heading_diff_deg),
            ("influence_radius_m", self.influence_radius_m),
            ("stationary_threshold_m", self.stationary_threshold_m),
            ("min_snr", self.min_snr),
        ] {
            if !value.is_finite() || value <= 0.0 {
                return Err(ConfigError::NonFiniteThreshold { field, value });
            }
        }
        if self.min_samples == 0 {
            return Err(ConfigError::ZeroMinSamples);
        }
        if self.fold_validate && self.fold_candidates == 0 {
            return Err(ConfigError::ZeroFoldCandidates);
        }
        Ok(())
    }
}

/// Validating builder for [`IdentifyConfig`]. Every setter is infallible;
/// [`IdentifyConfigBuilder::build`] runs the full validation once at the end
/// so errors surface at construction, not deep inside the pipeline.
#[derive(Debug, Clone)]
pub struct IdentifyConfigBuilder {
    cfg: IdentifyConfig,
}

impl IdentifyConfigBuilder {
    /// Analysis window in seconds.
    pub fn window_s(mut self, v: u32) -> Self {
        self.cfg.window_s = v;
        self
    }

    /// Map-matching search radius in meters.
    pub fn match_radius_m(mut self, v: f64) -> Self {
        self.cfg.match_radius_m = v;
        self
    }

    /// Maximum heading difference in degrees.
    pub fn max_heading_diff_deg(mut self, v: f64) -> Self {
        self.cfg.max_heading_diff_deg = v;
        self
    }

    /// Stop-line influence radius in meters.
    pub fn influence_radius_m(mut self, v: f64) -> Self {
        self.cfg.influence_radius_m = v;
        self
    }

    /// Period search band. Accepts the raw bounds so degenerate bands are
    /// reported as a [`ConfigError`] instead of panicking in
    /// [`PeriodBand::new`].
    pub fn band_s(mut self, min_period: f64, max_period: f64) -> Self {
        // Bypass PeriodBand::new's panic: build() rejects bad bounds.
        self.cfg.band = PeriodBand { min_period, max_period };
        self
    }

    /// Resampling method for the sparse speed signal.
    pub fn interpolation(mut self, v: Method) -> Self {
        self.cfg.interpolation = v;
        self
    }

    /// Stationary-fix distance threshold in meters.
    pub fn stationary_threshold_m(mut self, v: f64) -> Self {
        self.cfg.stationary_threshold_m = v;
        self
    }

    /// Minimum samples per window before identification is attempted.
    pub fn min_samples(mut self, v: usize) -> Self {
        self.cfg.min_samples = v;
        self
    }

    /// Minimum periodogram SNR to accept a cycle estimate.
    pub fn min_snr(mut self, v: f64) -> Self {
        self.cfg.min_snr = v;
        self
    }

    /// Perpendicular-road enhancement threshold (samples).
    pub fn enhance_below_samples(mut self, v: usize) -> Self {
        self.cfg.enhance_below_samples = v;
        self
    }

    /// Enable parabolic peak refinement.
    pub fn refine_peak(mut self, v: bool) -> Self {
        self.cfg.refine_peak = v;
        self
    }

    /// Enable epoch-folding candidate validation.
    pub fn fold_validate(mut self, v: bool) -> Self {
        self.cfg.fold_validate = v;
        self
    }

    /// Number of DFT candidates for fold validation.
    pub fn fold_candidates(mut self, v: usize) -> Self {
        self.cfg.fold_candidates = v;
        self
    }

    /// Spectral estimator for the cycle length.
    pub fn cycle_method(mut self, v: CycleMethod) -> Self {
        self.cfg.cycle_method = v;
        self
    }

    /// Enable the intersection consensus pass.
    pub fn intersection_consensus(mut self, v: bool) -> Self {
        self.cfg.intersection_consensus = v;
        self
    }

    /// Spectrum evaluation path (exact-length vs padded power-of-two FFT).
    pub fn spectrum(mut self, v: SpectrumPath) -> Self {
        self.cfg.spectrum = v;
        self
    }

    /// Validates the assembled configuration.
    pub fn build(self) -> Result<IdentifyConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = IdentifyConfig::default();
        assert_eq!(cfg.window_s, 3600);
        assert!(cfg.band.min_period < cfg.band.max_period);
        assert!(cfg.match_radius_m > 0.0);
        assert!(!cfg.refine_peak, "paper baseline uses the integer bin");
        assert_eq!(cfg.spectrum, SpectrumPath::Exact, "paper spectrum semantics are the default");
        cfg.validate().expect("defaults must validate");
    }

    #[test]
    fn builder_roundtrips_defaults() {
        let cfg = IdentifyConfig::builder().build().unwrap();
        assert_eq!(cfg.window_s, IdentifyConfig::default().window_s);
        assert_eq!(cfg.min_samples, IdentifyConfig::default().min_samples);
    }

    #[test]
    fn builder_applies_setters() {
        let cfg = IdentifyConfig::builder()
            .window_s(1800)
            .min_samples(20)
            .band_s(40.0, 200.0)
            .spectrum(SpectrumPath::PaddedPow2)
            .build()
            .unwrap();
        assert_eq!(cfg.window_s, 1800);
        assert_eq!(cfg.min_samples, 20);
        assert_eq!(cfg.band.min_period, 40.0);
        assert_eq!(cfg.spectrum, SpectrumPath::PaddedPow2);
    }

    #[test]
    fn builder_rejects_zero_window() {
        assert_eq!(
            IdentifyConfig::builder().window_s(0).build().unwrap_err(),
            ConfigError::ZeroWindow
        );
    }

    #[test]
    fn builder_rejects_degenerate_bands() {
        // Inverted.
        assert!(matches!(
            IdentifyConfig::builder().band_s(300.0, 30.0).build(),
            Err(ConfigError::InvalidBand { .. })
        ));
        // Zero-width.
        assert!(matches!(
            IdentifyConfig::builder().band_s(60.0, 60.0).build(),
            Err(ConfigError::InvalidBand { .. })
        ));
        // Non-positive lower bound.
        assert!(matches!(
            IdentifyConfig::builder().band_s(0.0, 60.0).build(),
            Err(ConfigError::InvalidBand { .. })
        ));
        // Non-finite bound.
        assert!(matches!(
            IdentifyConfig::builder().band_s(30.0, f64::NAN).build(),
            Err(ConfigError::InvalidBand { .. })
        ));
    }

    #[test]
    fn builder_rejects_non_finite_thresholds() {
        let err = IdentifyConfig::builder().min_snr(f64::NAN).build().unwrap_err();
        assert!(matches!(err, ConfigError::NonFiniteThreshold { field: "min_snr", .. }));
        let err = IdentifyConfig::builder().match_radius_m(f64::INFINITY).build().unwrap_err();
        assert!(matches!(err, ConfigError::NonFiniteThreshold { field: "match_radius_m", .. }));
        let err = IdentifyConfig::builder().influence_radius_m(-5.0).build().unwrap_err();
        assert!(matches!(err, ConfigError::NonFiniteThreshold { field: "influence_radius_m", .. }));
    }

    #[test]
    fn builder_rejects_zero_counts() {
        assert_eq!(
            IdentifyConfig::builder().min_samples(0).build().unwrap_err(),
            ConfigError::ZeroMinSamples
        );
        assert_eq!(
            IdentifyConfig::builder().fold_candidates(0).build().unwrap_err(),
            ConfigError::ZeroFoldCandidates
        );
        // fold_candidates = 0 is fine when fold validation is off.
        assert!(IdentifyConfig::builder().fold_validate(false).fold_candidates(0).build().is_ok());
    }

    #[test]
    fn config_error_displays() {
        assert!(ConfigError::ZeroWindow.to_string().contains("window_s"));
        assert!(ConfigError::InvalidBand { min_period: 9.0, max_period: 3.0 }
            .to_string()
            .contains("period band"));
        assert!(ConfigError::NonFiniteThreshold { field: "min_snr", value: f64::NAN }
            .to_string()
            .contains("min_snr"));
    }
}
