//! Pipeline configuration.

use taxilight_signal::interpolate::Method;
use taxilight_signal::periodogram::PeriodBand;

/// Which spectral estimator drives cycle-length identification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleMethod {
    /// The paper's DFT (Eqs. 1–2), optionally fold-validated.
    Dft,
    /// Time-domain autocorrelation peak — an alternative estimator kept
    /// for the method ablation.
    Autocorrelation,
}

/// All tunables of the identification pipeline, with defaults matching the
/// paper's setup.
#[derive(Debug, Clone)]
pub struct IdentifyConfig {
    /// Analysis window fed to the frequency-domain step, seconds. The paper
    /// uses "a time period of data (e.g., the past 30 minutes)"; its worked
    /// example (Fig. 6) uses one hour.
    pub window_s: u32,
    /// Map-matching search radius, meters (urban GPS errors reach 100 m).
    pub match_radius_m: f64,
    /// Maximum heading difference for a segment to be orientation
    /// compatible, degrees (Fig. 5 rule).
    pub max_heading_diff_deg: f64,
    /// Only records within this distance of the stop line enter the
    /// frequency analysis — the light modulates speed near the queue.
    pub influence_radius_m: f64,
    /// Period search band for the cycle identifier.
    pub band: PeriodBand,
    /// Resampling method for the sparse speed signal (paper: cubic spline).
    pub interpolation: Method,
    /// Two fixes closer than this are "the same position" for stop
    /// detection, meters.
    pub stationary_threshold_m: f64,
    /// Minimum samples inside the window before attempting cycle
    /// identification.
    pub min_samples: usize,
    /// Minimum periodogram SNR to accept a cycle estimate.
    pub min_snr: f64,
    /// Use the perpendicular-road enhancement when the primary road's data
    /// is sparser than `enhance_below_samples`.
    pub enhance_below_samples: usize,
    /// Refine the DFT peak with parabolic interpolation (extension beyond
    /// the paper's integer-bin estimator).
    pub refine_peak: bool,
    /// Validate DFT candidate periods by epoch-folding contrast on the raw
    /// samples and keep the best-scoring one (preferring the fundamental).
    /// The paper's Eq. (2) takes the raw spectral argmax, which at taxi
    /// densities of 1–3 samples per cycle frequently locks onto
    /// low-frequency congestion noise; fold validation fixes exactly those
    /// cases while leaving dense-data results untouched. Disable to ablate
    /// back to the paper's raw estimator.
    pub fold_validate: bool,
    /// Number of top DFT bins considered as candidates when fold
    /// validation is on.
    pub fold_candidates: usize,
    /// Spectral estimator for the cycle length.
    pub cycle_method: CycleMethod,
    /// After the per-light pass, reconcile each intersection's cycle
    /// estimates: all lights of one crossroad share the cycle length
    /// (paper Sec. V-B), so deviating lights are re-identified with the
    /// search band pinned near the intersection consensus.
    pub intersection_consensus: bool,
}

impl Default for IdentifyConfig {
    fn default() -> Self {
        IdentifyConfig {
            window_s: 3600,
            match_radius_m: 100.0,
            max_heading_diff_deg: 45.0,
            influence_radius_m: 150.0,
            band: PeriodBand::TRAFFIC_LIGHTS,
            interpolation: Method::CubicSpline,
            stationary_threshold_m: 15.0,
            min_samples: 12,
            min_snr: 1.2,
            enhance_below_samples: 120,
            refine_peak: false,
            fold_validate: true,
            fold_candidates: 10,
            cycle_method: CycleMethod::Dft,
            intersection_consensus: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = IdentifyConfig::default();
        assert_eq!(cfg.window_s, 3600);
        assert!(cfg.band.min_period < cfg.band.max_period);
        assert!(cfg.match_radius_m > 0.0);
        assert!(!cfg.refine_peak, "paper baseline uses the integer bin");
    }
}
