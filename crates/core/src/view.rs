//! The read-only schedule query surface: immutable, versioned snapshots.
//!
//! [`ScheduleView`] is the answer shape every schedule consumer shares —
//! the serving daemon (`taxilight-serve`), the navigation stack
//! (`taxilight-navsim`) and the conformance harness (`taxilight-eval`)
//! all query the same snapshot type instead of borrowing the mutable
//! [`RealtimeIdentifier`]. A view is a point-in-time copy: taking one
//! never blocks identification, holding one never observes a later
//! round, and two views with equal [`digest`](ScheduleView::digest) hold
//! bit-identical schedules.
//!
//! The lookup path is deliberately allocation-free and lock-free: the
//! schedules live in one id-sorted vector and every query is a binary
//! search — the property the serving daemon's zero-alloc read gate pins
//! (`crates/serve/tests/zero_alloc_store.rs`).
//!
//! [`RealtimeIdentifier`]: crate::realtime::RealtimeIdentifier

use crate::pipeline::LightSchedule;
use taxilight_roadnet::graph::LightId;
use taxilight_trace::time::Timestamp;

/// FNV-1a 64-bit over a byte stream — the digest primitive shared with
/// the benches (stable across platforms, no hasher state dependence).
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// An immutable snapshot of the latest identified schedule of every
/// light, tagged with the version (round count) it reflects.
///
/// Ordering invariant: `schedules` is strictly ascending by `LightId`,
/// so [`schedule`](ScheduleView::schedule) is a binary search and
/// iteration order is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleView {
    /// Monotone snapshot version — the producer's round counter.
    version: u64,
    /// Feed-clock instant of the round this view reflects (`None` before
    /// the first round).
    at: Option<Timestamp>,
    /// `(light, schedule)` strictly ascending by light id.
    schedules: Vec<(LightId, LightSchedule)>,
}

impl ScheduleView {
    /// An empty view (version 0, no schedules) — the state a consumer
    /// sees before the first identification round publishes.
    pub fn empty() -> Self {
        ScheduleView { version: 0, at: None, schedules: Vec::new() }
    }

    /// Builds a view from arbitrary `(light, schedule)` pairs. Pairs are
    /// sorted by light id; for duplicate ids the last entry wins.
    pub fn new(
        version: u64,
        at: Option<Timestamp>,
        mut schedules: Vec<(LightId, LightSchedule)>,
    ) -> Self {
        // Stable sort + keep-last dedup: ties preserve insertion order,
        // so retaining the last occurrence per id is well-defined.
        schedules.sort_by_key(|(l, _)| l.0);
        schedules.reverse();
        schedules.dedup_by_key(|(l, _)| l.0);
        schedules.reverse();
        ScheduleView { version, at, schedules }
    }

    /// Builds a view from pairs already strictly ascending by light id —
    /// the zero-copy path for producers that maintain sorted state.
    ///
    /// # Panics
    /// Panics (debug builds only) when the input is not strictly
    /// ascending.
    pub fn from_sorted(
        version: u64,
        at: Option<Timestamp>,
        schedules: Vec<(LightId, LightSchedule)>,
    ) -> Self {
        debug_assert!(
            schedules.windows(2).all(|w| w[0].0 .0 < w[1].0 .0),
            "from_sorted input must be strictly ascending by light id"
        );
        ScheduleView { version, at, schedules }
    }

    /// The snapshot version (the producer's round counter).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Feed-clock instant of the round this view reflects.
    pub fn at(&self) -> Option<Timestamp> {
        self.at
    }

    /// Number of lights holding a schedule.
    pub fn len(&self) -> usize {
        self.schedules.len()
    }

    /// True when no light has a schedule yet.
    pub fn is_empty(&self) -> bool {
        self.schedules.is_empty()
    }

    /// The schedule of `light`, if identified. Binary search — zero
    /// allocations, zero locks.
    pub fn schedule(&self, light: LightId) -> Option<&LightSchedule> {
        self.schedules
            .binary_search_by_key(&light.0, |(l, _)| l.0)
            .ok()
            .map(|k| &self.schedules[k].1)
    }

    /// Seconds from `t` until `light` next turns green (0 when green);
    /// `None` when the light has no schedule. The navsim-style
    /// green-advisory primitive.
    pub fn wait_for_green(&self, light: LightId, t: Timestamp) -> Option<f64> {
        self.schedule(light).map(|s| s.wait_for_green(t))
    }

    /// True when `light` is estimated red at `t`; `None` without a
    /// schedule.
    pub fn is_red_at(&self, light: LightId, t: Timestamp) -> Option<bool> {
        self.schedule(light).map(|s| s.is_red_at(t))
    }

    /// Every `(light, schedule)` pair, ascending by light id.
    pub fn schedules(&self) -> impl Iterator<Item = (LightId, &LightSchedule)> {
        self.schedules.iter().map(|(l, s)| (*l, s))
    }

    /// FNV-1a digest over the exact bit patterns of every schedule, in
    /// id order: two views are bit-identical iff their digests match
    /// (modulo the 64-bit collision bound). The version and instant tags
    /// are *not* digested — the digest identifies schedule content, so a
    /// replayed feed produces the same digest at every matching round.
    pub fn digest(&self) -> u64 {
        // Fixed-size per-pair buffer keeps the digest itself
        // allocation-free — it runs on the daemon's stats path.
        fnv1a(self.schedules.iter().flat_map(|(l, s)| {
            let mut bytes = [0u8; 44];
            bytes[..4].copy_from_slice(&l.0.to_le_bytes());
            let vals = [s.cycle_s, s.red_s, s.green_s, s.red_start_s, s.snr];
            for (k, v) in vals.into_iter().enumerate() {
                bytes[4 + 8 * k..12 + 8 * k].copy_from_slice(&v.to_bits().to_le_bytes());
            }
            bytes
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(light: u32, cycle: f64) -> (LightId, LightSchedule) {
        (
            LightId(light),
            LightSchedule {
                light: LightId(light),
                cycle_s: cycle,
                red_s: cycle * 0.4,
                green_s: cycle * 0.6,
                red_start_s: 1000.0,
                snr: 3.0,
                samples: 40,
            },
        )
    }

    #[test]
    fn empty_view_answers_nothing() {
        let v = ScheduleView::empty();
        assert_eq!(v.version(), 0);
        assert_eq!(v.at(), None);
        assert!(v.is_empty());
        assert_eq!(v.schedule(LightId(0)), None);
        assert_eq!(v.wait_for_green(LightId(0), Timestamp(0)), None);
    }

    #[test]
    fn new_sorts_and_keeps_last_duplicate() {
        let v = ScheduleView::new(3, None, vec![sched(5, 90.0), sched(1, 60.0), sched(5, 120.0)]);
        assert_eq!(v.len(), 2);
        let ids: Vec<u32> = v.schedules().map(|(l, _)| l.0).collect();
        assert_eq!(ids, vec![1, 5]);
        assert_eq!(v.schedule(LightId(5)).unwrap().cycle_s, 120.0);
    }

    #[test]
    fn lookup_matches_linear_scan() {
        let pairs: Vec<_> =
            [2u32, 7, 11, 40, 41, 900].iter().map(|&k| sched(k, 60.0 + k as f64)).collect();
        let v = ScheduleView::from_sorted(1, Some(Timestamp(50)), pairs.clone());
        for (l, s) in &pairs {
            assert_eq!(v.schedule(*l), Some(s));
        }
        assert_eq!(v.schedule(LightId(3)), None);
        assert_eq!(v.schedule(LightId(1000)), None);
    }

    #[test]
    fn wait_for_green_delegates_to_schedule() {
        let v = ScheduleView::new(1, None, vec![sched(4, 100.0)]);
        let s = v.schedule(LightId(4)).unwrap();
        let t = Timestamp(1010);
        assert_eq!(v.wait_for_green(LightId(4), t), Some(s.wait_for_green(t)));
        assert_eq!(v.is_red_at(LightId(4), t), Some(s.is_red_at(t)));
    }

    #[test]
    fn digest_tracks_content_not_tags() {
        let a = ScheduleView::new(1, None, vec![sched(1, 90.0), sched(2, 60.0)]);
        let b = ScheduleView::new(7, Some(Timestamp(99)), vec![sched(2, 60.0), sched(1, 90.0)]);
        assert_eq!(a.digest(), b.digest(), "tags and input order must not affect the digest");
        let c = ScheduleView::new(1, None, vec![sched(1, 90.5), sched(2, 60.0)]);
        assert_ne!(a.digest(), c.digest());
        assert_eq!(ScheduleView::empty().digest(), 0xcbf29ce484222325);
    }
}
