//! Cycle-length identification (paper Sec. V).
//!
//! The speed of traffic near an intersection is a periodic signal with the
//! traffic light's frequency. The identifier (V-A):
//!
//! 1. collects the window's speed samples near the stop line, merging
//!    same-second reports by their mean;
//! 2. spline-interpolates them onto a 1 Hz grid (negative interpolated
//!    speeds are tolerated — only the periodicity matters);
//! 3. runs the Eq. (1) DFT and picks the strongest admissible bin;
//! 4. converts bin → cycle length via Eq. (2): `l = N / argmax|x_n|`.

use crate::config::IdentifyConfig;
use crate::preprocess::LightObs;
use taxilight_signal::interpolate::{resample, InterpolateError};
use taxilight_signal::periodogram::{
    band_candidates_with, dominant_period_refined_with, dominant_period_with,
};
use taxilight_trace::time::Timestamp;

/// A cycle-length estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleEstimate {
    /// Estimated cycle length, seconds.
    pub cycle_s: f64,
    /// Winning DFT bin.
    pub bin: usize,
    /// Peak-to-median magnitude ratio in the searched band.
    pub snr: f64,
    /// Number of raw speed samples that entered the analysis.
    pub samples_used: usize,
}

/// Why cycle identification failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CycleError {
    /// Fewer than `need` samples in the window.
    TooFewSamples {
        /// Samples available.
        have: usize,
        /// Samples required ([`IdentifyConfig::min_samples`]).
        need: usize,
    },
    /// The periodogram found no admissible peak, or its SNR was below
    /// [`IdentifyConfig::min_snr`].
    NoPeriodicity,
    /// Interpolation failed (e.g. all samples coincide).
    Interpolation(InterpolateError),
    /// The analysis window itself was degenerate (zero length).
    DegenerateWindow {
        /// Grid length requested, seconds.
        window_len_s: usize,
    },
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CycleError::TooFewSamples { have, need } => {
                write!(f, "TooFewSamples: {have} speed samples in window, need {need}")
            }
            CycleError::NoPeriodicity => write!(f, "NoPeriodicity: no confident in-band peak"),
            CycleError::Interpolation(e) => write!(f, "Interpolation: {e}"),
            CycleError::DegenerateWindow { window_len_s } => {
                write!(f, "DegenerateWindow: {window_len_s} s analysis window")
            }
        }
    }
}

impl std::error::Error for CycleError {}

/// Extracts `(seconds since t0, speed km/h)` samples from observations,
/// keeping only fixes within `influence_radius_m` of the stop line.
pub fn speed_samples(obs: &[LightObs], t0: Timestamp, influence_radius_m: f64) -> Vec<(f64, f64)> {
    obs.iter()
        .filter(|o| o.dist_to_stop_m <= influence_radius_m)
        .map(|o| (o.time.delta(t0) as f64, o.speed_kmh))
        .collect()
}

/// Identifies the cycle length from the observations of one light in the
/// window `[t0, t1)`.
pub fn identify_cycle(
    obs: &[LightObs],
    t0: Timestamp,
    t1: Timestamp,
    cfg: &IdentifyConfig,
) -> Result<CycleEstimate, CycleError> {
    let samples = speed_samples(obs, t0, cfg.influence_radius_m);
    identify_cycle_from_samples(&samples, t1.delta(t0) as usize, cfg)
}

/// Core of [`identify_cycle`], reusable by the enhancement path: samples
/// are `(seconds since window start, speed)`, `window_len_s` the grid
/// length.
pub fn identify_cycle_from_samples(
    samples: &[(f64, f64)],
    window_len_s: usize,
    cfg: &IdentifyConfig,
) -> Result<CycleEstimate, CycleError> {
    if window_len_s == 0 {
        return Err(CycleError::DegenerateWindow { window_len_s });
    }
    // Non-finite samples come from corrupted feeds bypassing the
    // preprocessor; they must surface as a typed failure, never as NaN
    // poisoning the spectrum.
    let samples: Vec<(f64, f64)> =
        samples.iter().copied().filter(|&(t, v)| t.is_finite() && v.is_finite()).collect();
    let samples = samples.as_slice();
    if samples.len() < cfg.min_samples {
        return Err(CycleError::TooFewSamples { have: samples.len(), need: cfg.min_samples });
    }
    let grid = resample(samples, 0.0, 1.0, window_len_s, cfg.interpolation)
        .map_err(CycleError::Interpolation)?;
    // A light leaves km/h-scale modulation; anything below this is flat
    // traffic (or pure numerical ripple) and the periodogram would only
    // amplify noise.
    if taxilight_signal::stats::stddev(&grid).unwrap_or(0.0) < 0.5 {
        return Err(CycleError::NoPeriodicity);
    }
    let est = match cfg.cycle_method {
        crate::config::CycleMethod::Dft => {
            if cfg.refine_peak {
                dominant_period_refined_with(&grid, 1.0, cfg.band, cfg.spectrum)
            } else {
                dominant_period_with(&grid, 1.0, cfg.band, cfg.spectrum)
            }
        }
        crate::config::CycleMethod::Autocorrelation => {
            taxilight_signal::autocorr::dominant_period_autocorr(&grid, 1.0, cfg.band)
        }
    }
    .ok_or(CycleError::NoPeriodicity)?;
    if est.snr < cfg.min_snr {
        return Err(CycleError::NoPeriodicity);
    }
    // The autocorrelation peak is already a time-domain statistic; it
    // bypasses the DFT-candidate fold validation below.
    if cfg.cycle_method == crate::config::CycleMethod::Autocorrelation || !cfg.fold_validate {
        return Ok(CycleEstimate {
            cycle_s: est.period,
            bin: est.bin,
            snr: est.snr,
            samples_used: samples.len(),
        });
    }

    // Fold validation: re-rank the strongest DFT bins (and their half
    // periods, so a sub-harmonic winner still exposes its fundamental) by
    // epoch-folding contrast on the *raw* samples.
    let mut candidates =
        band_candidates_with(&grid, 1.0, cfg.band, cfg.fold_candidates, cfg.spectrum);
    let subdivided: Vec<_> = candidates
        .iter()
        .flat_map(|c| {
            [2.0, 3.0, 4.0].into_iter().filter_map(move |k| {
                let period = c.period / k;
                (period >= cfg.band.min_period).then_some({
                    taxilight_signal::periodogram::PeriodEstimate {
                        period,
                        bin: (c.bin as f64 * k) as usize,
                        magnitude: c.magnitude,
                        snr: c.snr,
                    }
                })
            })
        })
        .collect();
    candidates.extend(subdivided);
    candidates.dedup_by(|a, b| (a.period - b.period).abs() < 0.5);

    // Fold contrast collapses once the candidate period drifts by more
    // than ~T²/window across the window, so every candidate is locally
    // refined (fine hill-climb of the contrast) before comparison. This
    // both rescues subdivided candidates — whose periods inherit the
    // parent bin's quantisation — and removes the Eq. (2) integer-bin
    // quantisation from the final estimate.
    let refine_period = |p0: f64| -> (f64, f64) {
        let half_width = (p0 * p0 / window_len_s as f64).clamp(1.5, 8.0);
        let mut best = (p0, crate::superpose::fold_contrast(samples, p0));
        let steps = (2.0 * half_width / 0.25) as i64;
        for k in 0..=steps {
            let p = p0 - half_width + 0.25 * k as f64;
            if p < cfg.band.min_period || p > cfg.band.max_period {
                continue;
            }
            let s = crate::superpose::fold_contrast(samples, p);
            if s > best.1 {
                best = (p, s);
            }
        }
        best
    };

    struct Scored {
        period: f64,
        score: f64,
        bin: usize,
        snr: f64,
    }
    let scored: Vec<Scored> = candidates
        .iter()
        .map(|c| {
            let (period, score) = refine_period(c.period);
            Scored { period, score, bin: c.bin, snr: c.snr }
        })
        .collect();
    let best_idx = (0..scored.len())
        .max_by(|&a, &b| scored[a].score.total_cmp(&scored[b].score))
        .expect("non-empty scored set");
    if scored[best_idx].score <= 0.0 {
        return Err(CycleError::NoPeriodicity);
    }
    // Take the best-scoring candidate, then descend its *harmonic chain*:
    // a multiple of the true cycle folds just as cleanly (the pattern
    // simply repeats inside the fold), so when ~period/k of the winner
    // scores nearly as well, the shorter one is the fundamental. The
    // preference is restricted to the winner's own chain — comparing
    // unrelated candidates by length would let spurious short periods
    // steal wins.
    let mut winner_idx = best_idx;
    for (i, c) in scored.iter().enumerate() {
        let ratio = scored[best_idx].period / c.period;
        let harmonic = ratio.round() >= 2.0 && (ratio - ratio.round()).abs() < 0.1;
        if harmonic
            && c.score >= 0.8 * scored[best_idx].score
            && c.period < scored[winner_idx].period
        {
            winner_idx = i;
        }
    }
    let winner = &scored[winner_idx];
    Ok(CycleEstimate {
        cycle_s: winner.period,
        bin: winner.bin,
        snr: winner.snr,
        samples_used: samples.len(),
    })
}

impl crate::workspace::IdentifyWorkspace {
    /// Workspace twin of [`identify_cycle_from_samples`]: bit-identical
    /// results (same summation order, same bin grid, same tie-breaks) with
    /// zero steady-state heap allocations once the buffers and FFT plans
    /// for a signal shape exist.
    pub fn cycle_from_samples(
        &mut self,
        samples: &[(f64, f64)],
        window_len_s: usize,
        cfg: &IdentifyConfig,
    ) -> Result<CycleEstimate, CycleError> {
        if window_len_s == 0 {
            return Err(CycleError::DegenerateWindow { window_len_s });
        }
        self.finite.clear();
        self.finite
            .extend(samples.iter().copied().filter(|&(t, v)| t.is_finite() && v.is_finite()));
        if self.finite.len() < cfg.min_samples {
            return Err(CycleError::TooFewSamples {
                have: self.finite.len(),
                need: cfg.min_samples,
            });
        }
        self.signal
            .resample_into(&self.finite, 0.0, 1.0, window_len_s, cfg.interpolation, &mut self.grid)
            .map_err(CycleError::Interpolation)?;
        if taxilight_signal::stats::stddev(&self.grid).unwrap_or(0.0) < 0.5 {
            return Err(CycleError::NoPeriodicity);
        }
        let est = match cfg.cycle_method {
            crate::config::CycleMethod::Dft => self.signal.dominant_period(
                &self.grid,
                1.0,
                cfg.band,
                cfg.refine_peak,
                cfg.spectrum,
            ),
            crate::config::CycleMethod::Autocorrelation => {
                taxilight_signal::autocorr::dominant_period_autocorr(&self.grid, 1.0, cfg.band)
            }
        }
        .ok_or(CycleError::NoPeriodicity)?;
        if est.snr < cfg.min_snr {
            return Err(CycleError::NoPeriodicity);
        }
        if cfg.cycle_method == crate::config::CycleMethod::Autocorrelation || !cfg.fold_validate {
            return Ok(CycleEstimate {
                cycle_s: est.period,
                bin: est.bin,
                snr: est.snr,
                samples_used: self.finite.len(),
            });
        }

        self.signal.band_candidates_into(
            &self.grid,
            1.0,
            cfg.band,
            cfg.fold_candidates,
            cfg.spectrum,
            &mut self.candidates,
        );
        // Subdivisions push in the exact order the allocating path's
        // `flat_map` produces: candidate-major, divisor-minor.
        let original_len = self.candidates.len();
        for i in 0..original_len {
            let c = self.candidates[i];
            for k in [2.0, 3.0, 4.0] {
                let period = c.period / k;
                if period >= cfg.band.min_period {
                    self.candidates.push(taxilight_signal::periodogram::PeriodEstimate {
                        period,
                        bin: (c.bin as f64 * k) as usize,
                        magnitude: c.magnitude,
                        snr: c.snr,
                    });
                }
            }
        }
        self.candidates.dedup_by(|a, b| (a.period - b.period).abs() < 0.5);

        let samples = self.finite.as_slice();
        let refine_period = |p0: f64| -> (f64, f64) {
            let half_width = (p0 * p0 / window_len_s as f64).clamp(1.5, 8.0);
            let mut best = (p0, crate::superpose::fold_contrast(samples, p0));
            let steps = (2.0 * half_width / 0.25) as i64;
            for k in 0..=steps {
                let p = p0 - half_width + 0.25 * k as f64;
                if p < cfg.band.min_period || p > cfg.band.max_period {
                    continue;
                }
                let s = crate::superpose::fold_contrast(samples, p);
                if s > best.1 {
                    best = (p, s);
                }
            }
            best
        };

        // `(period, fold score, bin, snr)` — mirrors the allocating path's
        // `Scored` struct field for field.
        self.scored.clear();
        self.scored.extend(self.candidates.iter().map(|c| {
            let (period, score) = refine_period(c.period);
            (period, score, c.bin, c.snr)
        }));
        let best_idx = (0..self.scored.len())
            .max_by(|&a, &b| self.scored[a].1.total_cmp(&self.scored[b].1))
            .expect("non-empty scored set");
        if self.scored[best_idx].1 <= 0.0 {
            return Err(CycleError::NoPeriodicity);
        }
        let mut winner_idx = best_idx;
        for (i, c) in self.scored.iter().enumerate() {
            let ratio = self.scored[best_idx].0 / c.0;
            let harmonic = ratio.round() >= 2.0 && (ratio - ratio.round()).abs() < 0.1;
            if harmonic && c.1 >= 0.8 * self.scored[best_idx].1 && c.0 < self.scored[winner_idx].0 {
                winner_idx = i;
            }
        }
        let winner = self.scored[winner_idx];
        Ok(CycleEstimate {
            cycle_s: winner.0,
            bin: winner.2,
            snr: winner.3,
            samples_used: self.finite.len(),
        })
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared synthetic-observation builders for the pipeline unit tests: a
    //! queue-free toy model where speed near the light alternates between a
    //! red crawl and a green flow, sampled sparsely like the taxi feed.

    use super::*;
    use taxilight_trace::record::{PassengerState, TaxiId};
    use taxilight_trace::GeoPoint;

    /// Deterministic LCG for test reproducibility without rand.
    pub struct Lcg(pub u64);

    impl Lcg {
        pub fn next_f64(&mut self) -> f64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }

        pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
            lo + (hi - lo) * self.next_f64()
        }
    }

    /// Red/green square-wave speed with noise.
    pub fn planted_speed(t_abs: i64, cycle: u32, red: u32, offset: u32, rng: &mut Lcg) -> f64 {
        let pos = (t_abs - offset as i64).rem_euclid(cycle as i64) as u32;
        if pos < red {
            rng.range(0.0, 4.0)
        } else {
            rng.range(28.0, 45.0)
        }
    }

    /// Builds sparse observations over `[0, span_s)` with roughly one
    /// sample every `mean_gap_s` seconds.
    pub fn planted_obs(
        cycle: u32,
        red: u32,
        offset: u32,
        span_s: i64,
        mean_gap_s: f64,
        seed: u64,
    ) -> Vec<LightObs> {
        let mut rng = Lcg(seed.max(1));
        let mut obs = Vec::new();
        let mut t = 0i64;
        let mut taxi = 0u32;
        while t < span_s {
            obs.push(LightObs {
                taxi: TaxiId(taxi % 40),
                time: Timestamp(t),
                speed_kmh: planted_speed(t, cycle, red, offset, &mut rng),
                position: GeoPoint::new(22.5, 114.0),
                dist_to_stop_m: rng.range(5.0, 200.0),
                passenger: PassengerState::Vacant,
            });
            t += rng.range(0.3 * mean_gap_s, 1.7 * mean_gap_s).max(1.0) as i64;
            taxi += 1;
        }
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::planted_obs;
    use super::*;

    #[test]
    fn recovers_planted_cycle_from_dense_data() {
        // ~1 sample / 5 s over an hour: rich data.
        let obs = planted_obs(98, 39, 0, 3600, 5.0, 1);
        let est = identify_cycle(&obs, Timestamp(0), Timestamp(3600), &IdentifyConfig::default())
            .unwrap();
        assert!(
            (est.cycle_s - 98.0).abs() < 3.0,
            "cycle {} (bin {}, snr {})",
            est.cycle_s,
            est.bin,
            est.snr
        );
        assert!(est.snr > 2.0);
    }

    #[test]
    fn recovers_planted_cycle_from_sparse_data() {
        // ~1 sample / 20 s — the paper's actual feed density.
        let obs = planted_obs(106, 63, 30, 3600, 20.0, 7);
        let est = identify_cycle(&obs, Timestamp(0), Timestamp(3600), &IdentifyConfig::default())
            .unwrap();
        assert!((est.cycle_s - 106.0).abs() < 6.0, "cycle {}", est.cycle_s);
    }

    #[test]
    fn paper_worked_example_bin_37() {
        // One hour, truth 98 s: the paper reads bin 37 → 97.3 s.
        let obs = planted_obs(98, 39, 0, 3600, 4.0, 3);
        let est = identify_cycle(&obs, Timestamp(0), Timestamp(3600), &IdentifyConfig::default())
            .unwrap();
        assert!(est.bin == 36 || est.bin == 37, "bin {}", est.bin);
    }

    #[test]
    fn too_few_samples_is_reported() {
        let obs = planted_obs(98, 39, 0, 200, 30.0, 5);
        let err = identify_cycle(&obs, Timestamp(0), Timestamp(200), &IdentifyConfig::default())
            .unwrap_err();
        assert!(matches!(err, CycleError::TooFewSamples { .. }), "{err:?}");
    }

    #[test]
    fn aperiodic_signal_gives_no_periodicity() {
        // Constant-speed traffic (no light modulation).
        let mut obs = planted_obs(98, 39, 0, 3600, 10.0, 9);
        for o in &mut obs {
            o.speed_kmh = 35.0;
        }
        let err = identify_cycle(&obs, Timestamp(0), Timestamp(3600), &IdentifyConfig::default())
            .unwrap_err();
        assert_eq!(err, CycleError::NoPeriodicity);
    }

    #[test]
    fn influence_radius_filters_far_samples() {
        let obs = planted_obs(98, 39, 0, 3600, 10.0, 11);
        let far = speed_samples(&obs, Timestamp(0), 1.0);
        let near = speed_samples(&obs, Timestamp(0), 500.0);
        assert!(far.len() < near.len());
        assert_eq!(near.len(), obs.len());
    }

    #[test]
    fn interpolation_method_ablation_spline_at_least_as_good() {
        // DESIGN.md ablation hook: with sparse data the spline (paper's
        // choice) must not be worse than the zero-fill baseline.
        let obs = planted_obs(120, 55, 10, 3600, 25.0, 13);
        let spline_cfg = IdentifyConfig::default();
        let zero_cfg = IdentifyConfig {
            interpolation: taxilight_signal::interpolate::Method::NearestOrZero,
            ..IdentifyConfig::default()
        };
        let spline = identify_cycle(&obs, Timestamp(0), Timestamp(3600), &spline_cfg);
        let zero = identify_cycle(&obs, Timestamp(0), Timestamp(3600), &zero_cfg);
        let err_of = |r: &Result<CycleEstimate, CycleError>| {
            r.as_ref().map(|e| (e.cycle_s - 120.0).abs()).unwrap_or(f64::INFINITY)
        };
        assert!(
            err_of(&spline) <= err_of(&zero) + 2.0,
            "spline {:?} vs zero-fill {:?}",
            spline,
            zero
        );
    }

    #[test]
    fn refined_peak_not_worse_than_integer_bin() {
        let obs = planted_obs(98, 39, 0, 3600, 6.0, 17);
        let base = identify_cycle(&obs, Timestamp(0), Timestamp(3600), &IdentifyConfig::default())
            .unwrap();
        let refined = identify_cycle(
            &obs,
            Timestamp(0),
            Timestamp(3600),
            &IdentifyConfig { refine_peak: true, ..IdentifyConfig::default() },
        )
        .unwrap();
        assert!((refined.cycle_s - 98.0).abs() <= (base.cycle_s - 98.0).abs() + 1.0);
    }

    #[test]
    fn autocorrelation_method_also_recovers_cycle() {
        let obs = planted_obs(98, 39, 0, 3600, 8.0, 23);
        let cfg = IdentifyConfig {
            cycle_method: crate::config::CycleMethod::Autocorrelation,
            ..IdentifyConfig::default()
        };
        let est = identify_cycle(&obs, Timestamp(0), Timestamp(3600), &cfg).unwrap();
        assert!((est.cycle_s - 98.0).abs() < 4.0, "autocorr cycle {}", est.cycle_s);
    }

    #[test]
    fn padded_fft_spectrum_recovers_cycle() {
        // The radix-2 padded spectrum changes the bin grid but — with fold
        // validation refining the final period on the raw samples — must
        // still land on the planted cycle.
        let obs = planted_obs(98, 39, 0, 3600, 8.0, 29);
        let cfg = IdentifyConfig {
            spectrum: taxilight_signal::periodogram::SpectrumPath::PaddedPow2,
            ..IdentifyConfig::default()
        };
        let est = identify_cycle(&obs, Timestamp(0), Timestamp(3600), &cfg).unwrap();
        assert!((est.cycle_s - 98.0).abs() < 4.0, "padded cycle {}", est.cycle_s);
    }

    #[test]
    fn error_display_is_informative() {
        let e = CycleError::TooFewSamples { have: 3, need: 12 };
        assert!(e.to_string().contains("TooFewSamples"));
        let d = CycleError::DegenerateWindow { window_len_s: 0 };
        assert!(d.to_string().contains("DegenerateWindow"));
    }

    #[test]
    fn zero_length_window_is_a_typed_error() {
        let samples: Vec<(f64, f64)> = (0..50).map(|k| (k as f64, 20.0)).collect();
        let err = identify_cycle_from_samples(&samples, 0, &IdentifyConfig::default()).unwrap_err();
        assert!(matches!(err, CycleError::DegenerateWindow { .. }), "{err:?}");
    }

    #[test]
    fn non_finite_samples_are_filtered_not_propagated() {
        // Plant a clean periodic signal, then splice NaN/Inf samples in:
        // the estimate must survive and stay finite.
        let obs = planted_obs(98, 39, 0, 3600, 8.0, 19);
        let mut samples = speed_samples(&obs, Timestamp(0), 500.0);
        for k in (0..samples.len()).step_by(9) {
            samples[k].1 = f64::NAN;
        }
        samples.push((f64::INFINITY, 30.0));
        samples.push((120.0, f64::NEG_INFINITY));
        let est = identify_cycle_from_samples(&samples, 3600, &IdentifyConfig::default()).unwrap();
        assert!(est.cycle_s.is_finite());
        assert!((est.cycle_s - 98.0).abs() < 6.0, "cycle {}", est.cycle_s);
        // All-garbage input degrades to a typed error, not a panic.
        let garbage: Vec<(f64, f64)> = (0..60).map(|k| (k as f64, f64::NAN)).collect();
        let err =
            identify_cycle_from_samples(&garbage, 3600, &IdentifyConfig::default()).unwrap_err();
        assert!(matches!(err, CycleError::TooFewSamples { .. }), "{err:?}");
    }

    /// The workspace hot path is a *bit-identical* twin of the allocating
    /// reference: every `Ok` compares on `f64::to_bits`, every `Err` on
    /// structural equality — across one reused workspace, planted and
    /// degenerate inputs, both spectrum paths, refinement on/off, and the
    /// autocorrelation method.
    #[test]
    fn workspace_cycle_matches_allocating_bitwise() {
        use taxilight_signal::periodogram::SpectrumPath;
        let mut ws = crate::workspace::IdentifyWorkspace::new();
        let default = IdentifyConfig::default();
        let padded =
            IdentifyConfig { spectrum: SpectrumPath::PaddedPow2, ..IdentifyConfig::default() };
        let refined = IdentifyConfig { refine_peak: true, ..IdentifyConfig::default() };
        let autocorr = IdentifyConfig {
            cycle_method: crate::config::CycleMethod::Autocorrelation,
            ..IdentifyConfig::default()
        };
        let unvalidated = IdentifyConfig { fold_validate: false, ..IdentifyConfig::default() };

        let mut cases: Vec<(Vec<(f64, f64)>, usize)> = Vec::new();
        for (cycle, red, offset, gap, seed) in
            [(98, 39, 0, 5.0, 1u64), (106, 63, 30, 20.0, 7), (120, 55, 10, 25.0, 13)]
        {
            let obs = planted_obs(cycle, red, offset, 3600, gap, seed);
            cases.push((speed_samples(&obs, Timestamp(0), 500.0), 3600));
        }
        // NaN/Inf-spliced signal: the finite filter must behave identically.
        let mut dirty = cases[0].0.clone();
        for k in (0..dirty.len()).step_by(9) {
            dirty[k].1 = f64::NAN;
        }
        dirty.push((f64::INFINITY, 30.0));
        cases.push((dirty, 3600));
        // Degenerate inputs: flat traffic, too few samples, zero window.
        cases.push(((0..60).map(|k| (k as f64 * 7.0, 35.0)).collect(), 3600));
        cases.push((vec![(1.0, 20.0), (2.0, 0.0)], 3600));
        cases.push((cases[0].0.clone(), 0));
        // A pow2 window exercises the radix-2 plan instead of Bluestein.
        cases.push((cases[0].0.iter().copied().filter(|&(t, _)| t < 2048.0).collect(), 2048));

        for (samples, window) in &cases {
            for cfg in [&default, &padded, &refined, &autocorr, &unvalidated] {
                let reference = identify_cycle_from_samples(samples, *window, cfg);
                let got = ws.cycle_from_samples(samples, *window, cfg);
                match (&got, &reference) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.cycle_s.to_bits(), b.cycle_s.to_bits());
                        assert_eq!(a.snr.to_bits(), b.snr.to_bits());
                        assert_eq!(a.bin, b.bin);
                        assert_eq!(a.samples_used, b.samples_used);
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b),
                    _ => panic!("divergence: {got:?} vs {reference:?}"),
                }
            }
        }
        assert!(ws.plan_stats().hits() > 0, "plans should be reused across cases");
    }
}
