//! Real-time streaming identification — the deployment shape the paper's
//! title promises.
//!
//! [`RealtimeIdentifier`] consumes raw taxi records as they arrive from
//! the fleet feed, map-matches and partitions them incrementally, keeps a
//! sliding per-light window, re-identifies on a fixed cadence (the
//! paper's 5-minute monitoring loop), and maintains the
//! [`ScheduleMonitor`] history per light so scheduling changes surface as
//! they happen. At any instant the current best schedule of any light is
//! queryable in O(1).

use crate::config::{ConfigError, IdentifyConfig};
use crate::engine::{ExecMode, Identifier, IdentifyRequest};
use crate::health::HealthRegistry;
use crate::monitor::{ChangeEvent, ScheduleMonitor};
use crate::pipeline::{IdentifyError, LightSchedule};
use crate::preprocess::{LightObs, PartitionedTraces, Preprocessor};
use crate::view::ScheduleView;
use rayon::prelude::*;
use std::collections::BTreeMap;
use taxilight_obs::metrics::{self, Counter, Gauge, MetricClass};
use taxilight_obs::{event, span};
use taxilight_roadnet::graph::{LightId, RoadNetwork};
use taxilight_trace::io::TraceFileError;
use taxilight_trace::record::TaxiRecord;
use taxilight_trace::source::{RecordBatch, RecordSource};
use taxilight_trace::time::Timestamp;

/// Intake and round statistics of a [`RealtimeIdentifier`], as of the most
/// recent re-identification round. Returned by
/// [`RealtimeIdentifier::round_report`].
///
/// The counters are cumulative over the engine's lifetime; the per-round
/// fields describe the latest round only. All values derive from the feed
/// clock (record timestamps), never the wall clock, so a replayed feed
/// reproduces the report exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundReport {
    /// Instant of the most recent round, `None` before the first fires.
    pub at: Option<Timestamp>,
    /// Rounds fired so far.
    pub rounds: u64,
    /// Lights the latest round attempted (buffered lights at round time).
    pub lights_attempted: usize,
    /// Lights the latest round successfully identified.
    pub lights_identified: usize,
    /// Matched records discarded as (taxi, timestamp) duplicates.
    pub records_deduped_total: u64,
    /// Matched records discarded because they arrived *after* the round
    /// whose window they belonged to — older than the retained horizon.
    /// Before this counter existed such records were silently buffered and
    /// evicted unused; now the loss is visible so operators can widen
    /// [`with_reorder_grace`](RealtimeIdentifier::with_reorder_grace).
    pub out_of_grace_total: u64,
    /// Feed-clock seconds between the newest record seen and the latest
    /// round instant — how far the watermark had to run past the round
    /// before it fired (≥ the reorder grace once rounds are firing).
    pub watermark_lag_s: f64,
}

/// Streaming identification engine for one city.
///
/// All per-light state lives in `BTreeMap`s so every drain path iterates
/// in light-id order — output never depends on hash iteration order.
pub struct RealtimeIdentifier<'a> {
    net: &'a RoadNetwork,
    pre: Preprocessor<'a>,
    cfg: IdentifyConfig,
    /// The batch engine every round routes through. Built once so its
    /// workspace pool — FFT plans, scratch buffers — persists across
    /// rounds: steady-state re-identification allocates nothing on the
    /// cycle/DFT path.
    engine: Identifier<'a>,
    /// Re-identification cadence (the paper's 5 minutes).
    interval_s: u32,
    /// Extra feed-clock slack before a due round fires, to let records
    /// delayed in transit arrive. See [`with_reorder_grace`].
    ///
    /// [`with_reorder_grace`]: RealtimeIdentifier::with_reorder_grace
    reorder_grace_s: u32,
    /// Execution mode handed to the engine on every round.
    exec: ExecMode,
    /// Whether any round has fired yet (fixes the round schedule).
    started: bool,
    /// Sliding per-light observation buffers, time-ordered, deduplicated
    /// by (taxi, timestamp).
    buffers: BTreeMap<u32, Vec<LightObs>>,
    /// Latest successful schedule per light.
    current: BTreeMap<u32, LightSchedule>,
    /// Cycle-history monitors per light.
    monitors: BTreeMap<u32, ScheduleMonitor>,
    /// Newly detected scheduling changes since the last drain.
    pending_changes: Vec<(LightId, ChangeEvent)>,
    /// Change counts already reported per light.
    reported_changes: BTreeMap<u32, usize>,
    /// Per-light health accumulated round by round (confidence, grade,
    /// freshness, failure reasons) — feed-clock deterministic.
    health: HealthRegistry,
    /// Next scheduled re-identification instant.
    next_run: Option<Timestamp>,
    /// Newest record time seen (the feed watermark).
    now: Option<Timestamp>,
    /// Oldest record time seen (anchors the first round).
    earliest: Option<Timestamp>,
    /// Instant of the most recent fired round.
    last_round_at: Option<Timestamp>,
    /// Rounds fired so far.
    rounds: u64,
    /// Lights attempted / identified by the latest round.
    last_round_attempted: usize,
    last_round_identified: usize,
    /// Cumulative matched records dropped as duplicates.
    deduped_total: u64,
    /// Cumulative matched records dropped as older than the retained
    /// horizon of the last round (see [`RoundReport::out_of_grace_total`]).
    out_of_grace_total: u64,
    /// Registry mirrors of the intake counters and the watermark gauge.
    dedup_counter: Counter,
    out_of_grace_counter: Counter,
    watermark_lag_gauge: Gauge,
}

/// Validating builder for [`RealtimeIdentifier`], consistent with
/// [`IdentifyConfig::builder`]: every setter is infallible and
/// [`build`](RealtimeBuilder::build) runs the full validation once —
/// degenerate configs and a zero interval surface as a [`ConfigError`]
/// at construction instead of a panic deep inside the round loop.
#[derive(Debug, Clone)]
pub struct RealtimeBuilder<'a> {
    net: &'a RoadNetwork,
    cfg: IdentifyConfig,
    interval_s: u32,
    reorder_grace_s: u32,
    exec: ExecMode,
}

impl<'a> RealtimeBuilder<'a> {
    /// Identification configuration (defaults to the paper setup).
    pub fn config(mut self, cfg: IdentifyConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Re-identification cadence in seconds (default: the paper's 300).
    pub fn interval_s(mut self, v: u32) -> Self {
        self.interval_s = v;
        self
    }

    /// Reorder grace in feed-clock seconds (default 0): a round due at
    /// `t` only fires once the watermark passes `t + grace`, giving
    /// records delayed in transit that long to arrive.
    pub fn reorder_grace_s(mut self, v: u32) -> Self {
        self.reorder_grace_s = v;
        self
    }

    /// Engine [`ExecMode`] for re-identification rounds. Never changes
    /// results (sharded and serial are bit-identical); only wall-clock.
    pub fn exec_mode(mut self, v: ExecMode) -> Self {
        self.exec = v;
        self
    }

    /// Validates and builds the streaming engine.
    pub fn build(self) -> Result<RealtimeIdentifier<'a>, ConfigError> {
        self.cfg.validate()?;
        if self.interval_s == 0 {
            return Err(ConfigError::ZeroInterval);
        }
        let mut rt = RealtimeIdentifier::new(self.net, self.cfg, self.interval_s);
        rt.reorder_grace_s = self.reorder_grace_s;
        rt.exec = self.exec;
        Ok(rt)
    }
}

impl<'a> RealtimeIdentifier<'a> {
    /// Starts a validating builder over `net`, pre-loaded with the paper
    /// defaults (default config, 300 s interval, no reorder grace, auto
    /// execution mode).
    pub fn builder(net: &'a RoadNetwork) -> RealtimeBuilder<'a> {
        RealtimeBuilder {
            net,
            cfg: IdentifyConfig::default(),
            interval_s: 300,
            reorder_grace_s: 0,
            exec: ExecMode::default(),
        }
    }

    /// Creates the engine. `interval_s` is the re-identification cadence.
    /// Prefer [`builder`](RealtimeIdentifier::builder), which reports
    /// degenerate values as a [`ConfigError`] instead of panicking.
    ///
    /// # Panics
    /// Panics when `interval_s` is zero.
    pub fn new(net: &'a RoadNetwork, cfg: IdentifyConfig, interval_s: u32) -> Self {
        assert!(interval_s > 0, "re-identification interval must be positive");
        RealtimeIdentifier {
            net,
            pre: Preprocessor::new(net, cfg.clone()),
            engine: Identifier::new_unchecked(net, cfg.clone()),
            cfg,
            interval_s,
            reorder_grace_s: 0,
            exec: ExecMode::default(),
            started: false,
            buffers: BTreeMap::new(),
            current: BTreeMap::new(),
            monitors: BTreeMap::new(),
            pending_changes: Vec::new(),
            reported_changes: BTreeMap::new(),
            health: HealthRegistry::new(),
            next_run: None,
            now: None,
            earliest: None,
            last_round_at: None,
            rounds: 0,
            last_round_attempted: 0,
            last_round_identified: 0,
            deduped_total: 0,
            out_of_grace_total: 0,
            dedup_counter: metrics::global().counter(
                "taxilight_realtime_records_deduped_total",
                &[],
                MetricClass::Deterministic,
                "Matched records dropped as (taxi, timestamp) duplicates",
            ),
            out_of_grace_counter: metrics::global().counter(
                "taxilight_realtime_out_of_grace_total",
                &[],
                MetricClass::Deterministic,
                "Matched records dropped for arriving after their window's round",
            ),
            watermark_lag_gauge: metrics::global().gauge(
                "taxilight_realtime_watermark_lag_s",
                &[],
                MetricClass::Deterministic,
                "Feed-clock seconds between the watermark and the latest round instant",
            ),
        }
    }

    /// Sets the reorder grace: a round due at `t` only fires once the feed
    /// watermark passes `t + grace_s`, giving records delayed in transit
    /// that long to arrive. With a grace covering the feed's worst
    /// reordering, a shuffled feed reproduces the clean feed's schedules
    /// exactly (rounds still analyse the window ending at `t`).
    #[deprecated(
        since = "0.3.0",
        note = "use RealtimeIdentifier::builder(net).reorder_grace_s(..) — scheduled for removal one release after 0.3"
    )]
    pub fn with_reorder_grace(mut self, grace_s: u32) -> Self {
        self.reorder_grace_s = grace_s;
        self
    }

    /// Sets the engine [`ExecMode`] used by re-identification rounds.
    /// Never changes results (sharded and serial are bit-identical); only
    /// wall-clock.
    #[deprecated(
        since = "0.3.0",
        note = "use RealtimeIdentifier::builder(net).exec_mode(..) — scheduled for removal one release after 0.3"
    )]
    pub fn with_exec_mode(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// Feeds one raw record. Records may arrive out of order (network
    /// delay) or duplicated (at-least-once upload); buffers stay
    /// time-sorted and deduplicated by (taxi, timestamp), and
    /// re-identification fires once the feed watermark passes the next
    /// scheduled instant plus the reorder grace.
    pub fn push(&mut self, record: &TaxiRecord) {
        let matched = self.pre.match_record(record);
        self.ingest(record.time, matched);
    }

    /// Sequential half of record intake: buffer the (already map-matched)
    /// observation, advance the watermark, fire due rounds. Splitting this
    /// from the pure matching step lets [`extend`] amortize map matching
    /// over a whole batch while keeping intake semantics identical to
    /// push-by-push — including rounds that fire mid-batch.
    ///
    /// [`extend`]: RealtimeIdentifier::extend
    fn ingest(&mut self, t: Timestamp, matched: Option<(LightId, LightObs)>) {
        if let Some((light, obs)) = matched {
            // A record older than the last round's retained horizon can
            // never enter a future window: buffering it would only feed
            // the next eviction. Count the loss instead of hiding it.
            let horizon = self.last_round_at.map(|r| r.offset(-(self.cfg.window_s as i64) - 60));
            if horizon.is_some_and(|h| obs.time < h) {
                self.out_of_grace_total += 1;
                self.out_of_grace_counter.inc();
                event!("realtime.out_of_grace", light = light.0);
            } else {
                let buf = self.buffers.entry(light.0).or_default();
                // Insert keeping time order (near-append in practice). All
                // equal-time observations sit directly before `pos`, so the
                // duplicate scan is O(taxis reporting this second).
                let pos = buf.partition_point(|o| o.time <= obs.time);
                let duplicate = buf[..pos]
                    .iter()
                    .rev()
                    .take_while(|o| o.time == obs.time)
                    .any(|o| o.taxi == obs.taxi);
                if !duplicate {
                    buf.insert(pos, obs);
                } else {
                    self.deduped_total += 1;
                    self.dedup_counter.inc();
                }
            }
        }
        if self.now.is_none_or(|n| t > n) {
            self.now = Some(t);
        }
        if self.earliest.is_none_or(|e| t < e) {
            self.earliest = Some(t);
        }
        self.run_due_rounds();
    }

    /// Fires every round whose due instant the watermark has passed (plus
    /// grace). The first due instant derives from the *earliest* record
    /// time — not arrival order — so a reordered feed schedules the same
    /// rounds as the clean one; afterwards rounds advance on the fixed
    /// cadence, catching up in a loop across feed gaps.
    fn run_due_rounds(&mut self) {
        let Some(now) = self.now else { return };
        if !self.started {
            let Some(earliest) = self.earliest else { return };
            self.next_run = Some(earliest.offset(self.cfg.window_s as i64));
        }
        while let Some(due) = self.next_run {
            if now.delta(due) < self.reorder_grace_s as i64 {
                break;
            }
            self.started = true;
            self.reidentify(due);
            self.next_run = Some(due.offset(self.interval_s as i64));
        }
    }

    /// Feeds a batch of records.
    ///
    /// Map matching — the spatial-index lookup dominating per-record intake
    /// cost — is a pure function of the record, so the whole batch is
    /// matched up front in parallel and the results ingested sequentially.
    /// This is observably identical to pushing record by record (the
    /// watermark advances per record, so rounds still fire mid-batch at
    /// exactly the same points), just cheaper.
    pub fn extend<'r>(&mut self, records: impl IntoIterator<Item = &'r TaxiRecord>) {
        let batch: Vec<&TaxiRecord> = records.into_iter().collect();
        let matched: Vec<(Timestamp, Option<(LightId, LightObs)>)> = {
            let pre = &self.pre;
            batch.into_par_iter().map(|r| (r.time, pre.match_record(r))).collect()
        };
        for (t, m) in matched {
            self.ingest(t, m);
        }
    }

    /// Feeds an entire bounded-memory [`RecordSource`] — the out-of-core
    /// intake for city-day feeds that never fit in RAM.
    ///
    /// Each batch goes through the same matched-in-parallel /
    /// ingested-sequentially path as [`extend`], and the batch split is
    /// invisible: for the same record sequence, any chunk size produces
    /// the same rounds, schedules and [`round_report`] as one giant
    /// `extend` or push-by-push — pinned by `tests/stream_equivalence.rs`.
    /// Resident memory is `O(chunk) + O(window)`: the sliding buffers'
    /// eviction horizon caps per-light state independent of feed length.
    ///
    /// Returns the number of records consumed (decoded records, not
    /// rejected lines — those stay with the source).
    ///
    /// [`extend`]: RealtimeIdentifier::extend
    /// [`round_report`]: RealtimeIdentifier::round_report
    pub fn extend_source<S: RecordSource>(&mut self, src: &mut S) -> Result<u64, TraceFileError> {
        let mut batch = RecordBatch::new();
        let mut consumed = 0u64;
        loop {
            let more = src.next_batch(&mut batch)?;
            if !batch.records.is_empty() {
                consumed += batch.records.len() as u64;
                self.extend(batch.records.iter());
            }
            if !more {
                break;
            }
        }
        Ok(consumed)
    }

    /// Runs one re-identification round at `at` over every buffered light
    /// and updates the monitors. Called automatically by [`push`]; public
    /// so callers with their own clock can force a round.
    ///
    /// [`push`]: RealtimeIdentifier::push
    pub fn reidentify(&mut self, at: Timestamp) {
        let _round_span = span!("realtime.round", at = at.0, lights = self.buffers.len());
        // The round counter this round's successes publish under (the
        // schedule-view version) and the analysis window it examined.
        let round = self.rounds + 1;
        let window_start = at.offset(-(self.cfg.window_s as i64));
        let horizon = at.offset(-(self.cfg.window_s as i64) - 60);
        // Evict observations that fell out of every future window.
        for buf in self.buffers.values_mut() {
            let keep_from = buf.partition_point(|o| o.time < horizon);
            buf.drain(..keep_from);
        }

        // Assemble a PartitionedTraces view over the buffers.
        let parts = PartitionedTraces::from_buckets(
            self.net.light_count(),
            self.buffers.iter().map(|(&id, obs)| (LightId(id), obs.as_slice())),
        );

        // BTreeMap keys iterate in light-id order; the engine returns
        // results in the same ascending order, so per-round processing
        // order — and the order of surfaced change events — is stable.
        // Consensus is off for Many-selections, preserving the historical
        // per-round behaviour (each light judged on its own data).
        let lights: Vec<LightId> = self.buffers.keys().map(|&id| LightId(id)).collect();
        let req = IdentifyRequest { exec: self.exec, ..IdentifyRequest::many(at, lights) };
        let mut attempted = 0usize;
        let mut identified = 0usize;
        for (light, result) in self.engine.run(&parts, &req).results {
            attempted += 1;
            identified += result.is_ok() as usize;
            let cycle = result.as_ref().ok().map(|e| e.cycle_s);
            if let Ok(est) = &result {
                self.current.insert(light.0, *est);
            }
            let monitor = self
                .monitors
                .entry(light.0)
                .or_insert_with(|| ScheduleMonitor::new(self.interval_s));
            monitor.push(at, cycle);
            // Surface any newly confirmed scheduling changes.
            let events = monitor.detect_changes(20.0, 2);
            let reported = self.reported_changes.entry(light.0).or_insert(0);
            for e in events.iter().skip(*reported) {
                self.pending_changes.push((light, *e));
            }
            *reported = events.len();
            // Fold this round's outcome into the light's health record:
            // window quality, confidence on success, reason on failure.
            let quality = crate::quality::assess(&parts, light, window_start, at, &self.cfg);
            self.health.record_round(light, round, at, &result, &quality, events.len() as u64);
        }
        self.last_round_at = Some(at);
        self.rounds += 1;
        self.last_round_attempted = attempted;
        self.last_round_identified = identified;
        let lag_s = self.now.map(|n| n.delta(at) as f64).unwrap_or(0.0);
        self.watermark_lag_gauge.set(lag_s);
        event!(
            "realtime.round_done",
            at = at.0,
            attempted = attempted,
            identified = identified,
            watermark_lag_s = lag_s
        );
    }

    /// Intake and round statistics as of the most recent round. The
    /// counters also feed the process-wide metrics registry
    /// (`taxilight_realtime_*`); this report is the per-instance view.
    pub fn round_report(&self) -> RoundReport {
        RoundReport {
            at: self.last_round_at,
            rounds: self.rounds,
            lights_attempted: self.last_round_attempted,
            lights_identified: self.last_round_identified,
            records_deduped_total: self.deduped_total,
            out_of_grace_total: self.out_of_grace_total,
            watermark_lag_s: match (self.now, self.last_round_at) {
                (Some(n), Some(at)) => n.delta(at) as f64,
                _ => 0.0,
            },
        }
    }

    /// The latest identified schedule of `light`, if any round succeeded.
    pub fn schedule(&self, light: LightId) -> Option<&LightSchedule> {
        self.current.get(&light.0)
    }

    /// Every light's latest schedule, in light-id order.
    pub fn schedules(&self) -> impl Iterator<Item = (LightId, &LightSchedule)> {
        self.current.iter().map(|(&id, s)| (LightId(id), s))
    }

    /// Estimated wait for green at `light` if arriving at `t`; `None`
    /// when the light has no schedule yet.
    pub fn wait_for_green(&self, light: LightId, t: Timestamp) -> Option<f64> {
        self.schedule(light).map(|s| s.wait_for_green(t))
    }

    /// Drains scheduling-change events detected since the last call,
    /// sorted by `(timestamp, LightId)`.
    ///
    /// Rounds surface events per light in light-id order, so after a
    /// multi-round catch-up the raw buffer interleaves timestamps across
    /// lights; the sort makes drained pages deterministic and
    /// chronological regardless of how many rounds ran between drains —
    /// the order the serving daemon's change-history pages rely on.
    pub fn take_changes(&mut self) -> Vec<(LightId, ChangeEvent)> {
        let mut changes = std::mem::take(&mut self.pending_changes);
        changes.sort_by_key(|(l, e)| (e.at, l.0));
        changes
    }

    /// The per-light monitor (cycle history), if the light ever reported.
    pub fn monitor(&self, light: LightId) -> Option<&ScheduleMonitor> {
        self.monitors.get(&light.0)
    }

    /// Per-light health accumulated across rounds: quality grade,
    /// estimate confidence (SNR), last-identified version and
    /// event-time, failure-reason counts. Like every other output of
    /// this engine it derives from the feed clock only, so a replayed
    /// feed reproduces it bit-for-bit.
    pub fn health(&self) -> &HealthRegistry {
        &self.health
    }

    /// The engine's shared map-matching stage — e.g. for its lifetime
    /// reject-reason totals ([`Preprocessor::cumulative_stats`]).
    pub fn preprocessor(&self) -> &Preprocessor<'a> {
        &self.pre
    }

    /// Number of lights currently holding buffered observations.
    pub fn buffered_lights(&self) -> usize {
        self.buffers.len()
    }

    /// Total buffered observations.
    pub fn buffered_observations(&self) -> usize {
        self.buffers.values().map(Vec::len).sum()
    }

    /// Runs an on-demand identification of `light` over the current
    /// buffers, outside the round cadence.
    pub fn identify_now(
        &self,
        light: LightId,
        at: Timestamp,
    ) -> Result<LightSchedule, IdentifyError> {
        let parts = PartitionedTraces::from_buckets(
            self.net.light_count(),
            self.buffers.iter().map(|(&id, obs)| (LightId(id), obs.as_slice())),
        );
        self.engine
            .run(&parts, &IdentifyRequest { exec: self.exec, ..IdentifyRequest::one(at, light) })
            .into_single()
    }

    /// Takes an immutable, versioned [`ScheduleView`] snapshot of every
    /// light's latest schedule — the read-only query surface shared by
    /// the serving daemon, navsim and eval.
    ///
    /// The view is a point-in-time copy (one allocation per snapshot,
    /// typically once per round): queries against it never borrow the
    /// identifier, so readers and the round loop proceed independently.
    /// `version` is the round counter and `at` the latest round instant,
    /// making any two snapshots of the same feed position bit-comparable
    /// via [`ScheduleView::digest`].
    pub fn view(&self) -> ScheduleView {
        // BTreeMap iteration is ascending — the sorted fast path.
        ScheduleView::from_sorted(
            self.rounds,
            self.last_round_at,
            self.current.iter().map(|(&id, s)| (LightId(id), *s)).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxilight_roadnet::generators::{grid_city, GridConfig};
    use taxilight_sim::lights::{IntersectionPlan, PhasePlan, SignalMap};
    use taxilight_sim::sim::{SimConfig, Simulator};

    fn world(
    ) -> (taxilight_roadnet::generators::GeneratedCity, SignalMap, Vec<TaxiRecord>, Timestamp) {
        let city =
            grid_city(&GridConfig { rows: 3, cols: 3, spacing_m: 600.0, ..GridConfig::default() });
        let mut signals = SignalMap::new();
        let plan = PhasePlan::new(96, 42, 11);
        for &ix in &city.intersections {
            signals.install_intersection(&city.net, ix, IntersectionPlan { ns: plan });
        }
        let start = Timestamp::civil(2014, 12, 5, 9, 0, 0);
        let mut sim = Simulator::new(
            &city.net,
            &signals,
            SimConfig {
                taxi_count: 130,
                start,
                seed: 31,
                hourly_activity: [1.0; 24],
                ..SimConfig::default()
            },
        );
        sim.run(5000);
        let (log, _) = sim.into_log();
        // A live feed arrives in (rough) chronological order, not grouped
        // per taxi the way `into_records` sorts.
        let mut records = log.into_records();
        records.sort_by_key(|r| r.time);
        (city, signals, records, start)
    }

    #[test]
    fn streaming_identifies_after_warmup() {
        let (city, signals, records, start) = world();
        let mut engine = RealtimeIdentifier::new(&city.net, IdentifyConfig::default(), 300);
        engine.extend(records.iter());
        assert!(engine.buffered_lights() > 0);
        assert!(engine.buffered_observations() > 0);

        // After a full window plus a couple of intervals, at least one
        // light must carry a schedule near the truth.
        let mut good = 0;
        let mut total = 0;
        for light in city.net.lights() {
            if let Some(est) = engine.schedule(light.id) {
                total += 1;
                let truth = signals.plan(light.id, start.offset(4000));
                if (est.cycle_s - truth.cycle_s as f64).abs() < 6.0 {
                    good += 1;
                }
            }
        }
        assert!(total >= 2, "streaming engine identified {total} lights");
        assert!(good >= 1, "{good}/{total} near truth");
    }

    #[test]
    fn wait_for_green_is_queryable() {
        let (city, _signals, records, start) = world();
        let mut engine = RealtimeIdentifier::new(&city.net, IdentifyConfig::default(), 300);
        engine.extend(records.iter());
        let lit = city.net.lights().iter().map(|l| l.id).find(|&l| engine.schedule(l).is_some());
        let Some(light) = lit else {
            panic!("no schedule identified");
        };
        let w = engine.wait_for_green(light, start.offset(4500)).unwrap();
        assert!((0.0..=300.0).contains(&w));
        assert!(engine.monitor(light).is_some());
        assert!(engine.wait_for_green(LightId(9999), start).is_none());
    }

    #[test]
    fn eviction_bounds_memory() {
        let (city, _signals, records, _) = world();
        let cfg = IdentifyConfig { window_s: 1200, ..IdentifyConfig::default() };
        let mut engine = RealtimeIdentifier::new(&city.net, cfg, 300);
        engine.extend(records.iter());
        // Buffers must hold roughly a window of data, not the whole feed.
        let per_light = engine.buffered_observations() / engine.buffered_lights().max(1);
        // The 1260 s retained horizon holds at most ~a quarter of the
        // 5000 s feed; without eviction the busiest approaches would hold
        // 4× this.
        assert!(per_light < 700, "per-light buffer {per_light} — eviction broken?");
    }

    #[test]
    fn out_of_order_records_are_tolerated() {
        let (city, _signals, mut records, _) = world();
        // Shuffle lightly: swap adjacent pairs (network jitter).
        for k in (0..records.len() - 1).step_by(2) {
            records.swap(k, k + 1);
        }
        let mut engine = RealtimeIdentifier::new(&city.net, IdentifyConfig::default(), 300);
        engine.extend(records.iter());
        // Buffers stay time-sorted despite the jitter.
        let parts_ok = city.net.lights().iter().all(|l| {
            engine
                .buffers
                .get(&l.id.0)
                .map(|b| b.windows(2).all(|w| w[0].time <= w[1].time))
                .unwrap_or(true)
        });
        assert!(parts_ok, "buffers lost time order");
    }

    #[test]
    fn shuffled_and_duplicated_feed_matches_clean_schedules() {
        use taxilight_trace::corrupt::{corrupt_records, CorruptOp};
        let (city, _signals, records, _) = world();
        // The grace must cover the worst reordering: a window of 15
        // positions at ~6 records/s is well inside 60 s of slack.
        let mut clean = RealtimeIdentifier::builder(&city.net).reorder_grace_s(60).build().unwrap();
        clean.extend(records.iter());

        let dirty = corrupt_records(
            &records,
            &[CorruptOp::Duplicate { prob: 0.3 }, CorruptOp::Shuffle { window: 15 }],
            77,
        );
        assert!(dirty.len() > records.len());
        let mut noisy = RealtimeIdentifier::builder(&city.net).reorder_grace_s(60).build().unwrap();
        noisy.extend(dirty.iter());

        let a: Vec<(LightId, LightSchedule)> = clean.schedules().map(|(l, s)| (l, *s)).collect();
        let b: Vec<(LightId, LightSchedule)> = noisy.schedules().map(|(l, s)| (l, *s)).collect();
        assert!(!a.is_empty(), "clean feed identified nothing");
        assert_eq!(a, b, "shuffled+duplicated feed diverged from clean feed");
    }

    #[test]
    fn duplicate_records_are_deduplicated() {
        let (city, _signals, records, _) = world();
        let mut once = RealtimeIdentifier::new(&city.net, IdentifyConfig::default(), 300);
        once.extend(records.iter());
        let mut twice = RealtimeIdentifier::new(&city.net, IdentifyConfig::default(), 300);
        for r in &records {
            twice.push(r);
            twice.push(r);
        }
        assert_eq!(once.buffered_observations(), twice.buffered_observations());
        let a: Vec<(LightId, LightSchedule)> = once.schedules().map(|(l, s)| (l, *s)).collect();
        let b: Vec<(LightId, LightSchedule)> = twice.schedules().map(|(l, s)| (l, *s)).collect();
        assert_eq!(a, b);
        // The drop is counted, not silent: every matched duplicate of the
        // doubled feed shows up in the report; the clean feed drops none.
        assert_eq!(once.round_report().records_deduped_total, 0);
        assert!(twice.round_report().records_deduped_total > 0);
    }

    #[test]
    fn round_report_tracks_rounds_and_watermark() {
        let (city, _signals, records, _) = world();
        let mut engine = RealtimeIdentifier::new(&city.net, IdentifyConfig::default(), 300);
        assert_eq!(engine.round_report().rounds, 0);
        assert_eq!(engine.round_report().at, None);
        engine.extend(records.iter());
        let report = engine.round_report();
        assert!(report.rounds >= 1, "no round fired over a 5000 s feed");
        assert!(report.at.is_some());
        assert!(report.lights_attempted > 0);
        assert!(report.lights_identified <= report.lights_attempted);
        // Feed clock only: the watermark can never trail the round it fired.
        assert!(report.watermark_lag_s >= 0.0);
        assert!(report.watermark_lag_s < 300.0 + 1.0, "lag {}", report.watermark_lag_s);
    }

    #[test]
    fn out_of_grace_records_are_counted_not_buffered() {
        let (city, _signals, records, start) = world();
        let mut engine = RealtimeIdentifier::new(&city.net, IdentifyConfig::default(), 300);
        engine.extend(records.iter());
        assert!(engine.round_report().rounds >= 1);
        assert_eq!(engine.round_report().out_of_grace_total, 0);
        let buffered = engine.buffered_observations();
        // Replay the very first matched record far behind the last round's
        // horizon: it must be counted and must not re-enter the buffers.
        let mut stale = None;
        for r in &records {
            if engine.pre.match_record(r).is_some() {
                stale = Some(*r);
                break;
            }
        }
        let mut stale = stale.expect("feed contains matched records");
        stale.time = start.offset(-10_000);
        engine.push(&stale);
        assert_eq!(engine.round_report().out_of_grace_total, 1);
        assert_eq!(engine.buffered_observations(), buffered);
    }

    #[test]
    fn feed_gap_catches_up_with_multiple_rounds() {
        let (city, _signals, records, _) = world();
        // Deliver the first half, then jump the clock far ahead: the
        // catch-up loop must fire every intermediate round, not just one.
        let mut engine = RealtimeIdentifier::new(&city.net, IdentifyConfig::default(), 300);
        let half = records.len() / 2;
        engine.extend(records[..half].iter());
        let mut last = *records.last().unwrap();
        last.time = last.time.offset(3600);
        engine.push(&last);
        let history = city
            .net
            .lights()
            .iter()
            .filter_map(|l| engine.monitor(l.id))
            .map(|m| m.history().len())
            .max()
            .unwrap_or(0);
        assert!(history >= 3, "expected several catch-up rounds, saw {history}");
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let city = grid_city(&GridConfig { rows: 3, cols: 3, ..GridConfig::default() });
        RealtimeIdentifier::new(&city.net, IdentifyConfig::default(), 0);
    }

    #[test]
    fn builder_validates_instead_of_panicking() {
        use crate::config::ConfigError;
        let city = grid_city(&GridConfig { rows: 3, cols: 3, ..GridConfig::default() });
        // Zero interval: rejected as a value, not a panic.
        let err = RealtimeIdentifier::builder(&city.net).interval_s(0).build();
        assert!(matches!(err, Err(ConfigError::ZeroInterval)));
        // Invalid identification config surfaces through the same channel.
        let bad = IdentifyConfig { window_s: 0, ..IdentifyConfig::default() };
        assert!(RealtimeIdentifier::builder(&city.net).config(bad).build().is_err());
        // The defaults build.
        let rt = RealtimeIdentifier::builder(&city.net).build().unwrap();
        assert_eq!(rt.interval_s, 300);
        assert_eq!(rt.reorder_grace_s, 0);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_with_methods_match_builder() {
        let (city, _signals, records, _) = world();
        let mut old = RealtimeIdentifier::new(&city.net, IdentifyConfig::default(), 300)
            .with_reorder_grace(45)
            .with_exec_mode(ExecMode::Serial);
        let mut new = RealtimeIdentifier::builder(&city.net)
            .reorder_grace_s(45)
            .exec_mode(ExecMode::Serial)
            .build()
            .unwrap();
        old.extend(records.iter());
        new.extend(records.iter());
        assert_eq!(old.view().digest(), new.view().digest());
        assert_eq!(old.view().version(), new.view().version());
    }

    #[test]
    fn take_changes_returns_timestamp_then_light_order() {
        let city = grid_city(&GridConfig { rows: 3, cols: 3, ..GridConfig::default() });
        let mut engine = RealtimeIdentifier::new(&city.net, IdentifyConfig::default(), 300);
        // Inject events the way multi-round catch-up does: grouped per
        // round in light-id order, timestamps interleaved across lights.
        let ev = |at: i64| ChangeEvent { at: Timestamp(at), from_cycle_s: 90.0, to_cycle_s: 96.0 };
        engine.pending_changes = vec![
            (LightId(7), ev(100)),
            (LightId(2), ev(400)),
            (LightId(9), ev(100)),
            (LightId(1), ev(100)),
            (LightId(5), ev(250)),
        ];
        let drained = engine.take_changes();
        let keys: Vec<(i64, u32)> = drained.iter().map(|(l, e)| (e.at.0, l.0)).collect();
        assert_eq!(keys, vec![(100, 1), (100, 7), (100, 9), (250, 5), (400, 2)]);
        // Drain is exhaustive: a second call returns nothing.
        assert!(engine.take_changes().is_empty());
    }

    #[test]
    fn health_registry_tracks_rounds_deterministically() {
        let (city, _signals, records, _) = world();
        let mut engine = RealtimeIdentifier::new(&city.net, IdentifyConfig::default(), 300);
        assert!(engine.health().is_empty());
        engine.extend(records.iter());

        let health = engine.health();
        assert!(!health.is_empty(), "no health records after a 5000 s feed");
        let report = engine.round_report();
        // Every currently scheduled light has a health record agreeing
        // with the engine's own state.
        for (light, sched) in engine.schedules() {
            let h = health.get(light).expect("scheduled light missing from health");
            assert!(h.identified());
            assert_eq!(h.snr, sched.snr, "health snr diverges from schedule");
            assert_eq!(h.cycle_s, sched.cycle_s);
            assert!(h.last_version >= 1 && h.last_version <= report.rounds);
            assert!(h.successes >= 1 && h.successes <= h.attempts);
            let at = h.last_at.expect("identified light without last_at");
            assert!(h.age_s(at.offset(60)) == Some(60.0));
        }
        // Grade counts partition the registry.
        assert_eq!(health.grade_counts().iter().sum::<usize>(), health.len());
        // Snapshot is a faithful copy in id order.
        let snap = health.snapshot();
        assert_eq!(snap.len(), health.len());
        assert!(snap.windows(2).all(|w| w[0].light.0 < w[1].light.0));

        // Feed-clock determinism: a replay reproduces every record.
        let mut replay = RealtimeIdentifier::new(&city.net, IdentifyConfig::default(), 300);
        replay.extend(records.iter());
        assert_eq!(replay.health().snapshot(), snap);
    }

    #[test]
    fn view_snapshot_matches_engine_and_outlives_it() {
        let (city, _signals, records, start) = world();
        let mut engine = RealtimeIdentifier::new(&city.net, IdentifyConfig::default(), 300);
        assert_eq!(engine.view().version(), 0);
        assert!(engine.view().is_empty());
        engine.extend(records.iter());
        let view = engine.view();
        assert_eq!(view.version(), engine.rounds);
        assert_eq!(view.at(), engine.round_report().at);
        assert!(!view.is_empty(), "no schedules after a 5000 s feed");
        for (l, s) in engine.schedules() {
            assert_eq!(view.schedule(l), Some(s));
            let t = start.offset(4500);
            assert_eq!(view.wait_for_green(l, t), engine.wait_for_green(l, t));
        }
        // Same state → same digest; the snapshot survives engine mutation.
        assert_eq!(view.digest(), engine.view().digest());
        let digest = view.digest();
        drop(engine);
        assert_eq!(view.digest(), digest);
    }
}
