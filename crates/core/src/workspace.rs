//! Per-worker reusable state for the identification hot path.
//!
//! [`IdentifyWorkspace`] owns a [`SignalWorkspace`] (FFT plan cache plus
//! resample/spectrum scratch) and every intermediate buffer the per-light
//! `cycle → enhance → superpose → red → change_point` chain needs from this
//! crate. After a warmup call per signal shape, the workspace-threaded
//! pipeline performs **zero heap allocations** on the steady-state
//! cycle/DFT path and returns results **bit-identical** to the allocating
//! reference functions — pinned by the per-stage equality tests in
//! `cycle`/`enhance`/`superpose`/`change_point` and the counting-allocator
//! test behind the `alloc-counter` feature.
//!
//! ## Ownership rules
//!
//! **One workspace per thread, never shared.** The engine keeps a checkout
//! pool and hands each scoped worker its own workspace for the whole run;
//! nothing on the per-light path takes a lock. Sharing one workspace behind
//! a mutex would serialize exactly the state the design keeps thread-local
//! (plans, scratch) and is never necessary: plans are cheap to build once
//! per worker and amortize across every light the worker processes.

use std::collections::HashSet;

use crate::red::Stop;
use taxilight_signal::periodogram::PeriodEstimate;
use taxilight_signal::plan::PlanCacheStats;
use taxilight_signal::SignalWorkspace;

/// Wall-clock time spent in each pipeline stage, accumulated across the
/// lights a workspace processed. Timing never influences results.
///
/// Internally integer nanoseconds, not seconds-as-f64: integer addition
/// is exactly associative and commutative, so merging per-worker
/// accumulations yields the **same total no matter how many shards the
/// run used or in which order the engine merged them** — the property
/// the sharded-equals-serial stage-total test pins. Float accumulation
/// would make the merged totals drift with shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTimings {
    /// Stage 1: cycle-length identification (resample + DFT + fold
    /// validation), including the enhancement fallback. Nanoseconds.
    cycle_ns: u64,
    /// Stage 2: stop extraction and red-duration classification.
    red_ns: u64,
    /// Stage 3: superposition, change-point search and onset fusion.
    change_ns: u64,
    /// Time spent inside dispatched `taxilight-signal` kernels (spectrum +
    /// resample grid evaluation), a *subset* of `cycle_ns` — drained from
    /// the signal workspace after each stage-1 lap so traces can separate
    /// vectorized-kernel time from surrounding orchestration.
    kernel_ns: u64,
}

impl StageTimings {
    /// Builds timings from explicit per-stage nanosecond totals (tests
    /// and report plumbing; the pipeline uses the `add_*` accumulators).
    pub fn from_nanos(cycle_ns: u64, red_ns: u64, change_ns: u64) -> Self {
        StageTimings { cycle_ns, red_ns, change_ns, kernel_ns: 0 }
    }

    /// Accumulates one stage-1 (cycle) lap.
    #[inline]
    pub fn add_cycle(&mut self, elapsed: std::time::Duration) {
        self.cycle_ns += elapsed.as_nanos() as u64;
    }

    /// Accumulates one stage-2 (red) lap.
    #[inline]
    pub fn add_red(&mut self, elapsed: std::time::Duration) {
        self.red_ns += elapsed.as_nanos() as u64;
    }

    /// Accumulates one stage-3 (change-point) lap.
    #[inline]
    pub fn add_change(&mut self, elapsed: std::time::Duration) {
        self.change_ns += elapsed.as_nanos() as u64;
    }

    /// Accumulates nanoseconds spent inside dispatched signal kernels
    /// (drained from `SignalWorkspace::take_kernel_nanos`).
    #[inline]
    pub fn add_kernel_ns(&mut self, ns: u64) {
        self.kernel_ns += ns;
    }

    /// Stage-1 (cycle) total, seconds.
    pub fn cycle_s(&self) -> f64 {
        self.cycle_ns as f64 * 1e-9
    }

    /// Stage-2 (red) total, seconds.
    pub fn red_s(&self) -> f64 {
        self.red_ns as f64 * 1e-9
    }

    /// Stage-3 (change-point) total, seconds.
    pub fn change_s(&self) -> f64 {
        self.change_ns as f64 * 1e-9
    }

    /// Kernel-time total (subset of the cycle stage), seconds.
    pub fn kernel_s(&self) -> f64 {
        self.kernel_ns as f64 * 1e-9
    }

    /// Raw kernel-time nanoseconds (subset of the cycle stage).
    pub fn kernel_nanos(&self) -> u64 {
        self.kernel_ns
    }

    /// Raw `(cycle, red, change)` nanosecond totals.
    pub fn as_nanos(&self) -> (u64, u64, u64) {
        (self.cycle_ns, self.red_ns, self.change_ns)
    }

    /// Adds another accumulation (e.g. a sibling worker's) into this
    /// one. Exactly associative and order-independent (integer adds).
    pub fn merge(&mut self, other: &StageTimings) {
        self.cycle_ns += other.cycle_ns;
        self.red_ns += other.red_ns;
        self.change_ns += other.change_ns;
        self.kernel_ns += other.kernel_ns;
    }

    /// Total across all stages, seconds.
    pub fn total_s(&self) -> f64 {
        (self.cycle_ns + self.red_ns + self.change_ns) as f64 * 1e-9
    }
}

/// Per-worker scratch + plan cache for allocation-free identification.
///
/// See the [module docs](self) for the ownership rules. Buffers grow on
/// first use and are kept afterwards; a workspace reused across lights and
/// rounds stops allocating once it has seen each signal shape once.
#[derive(Debug, Default)]
pub struct IdentifyWorkspace {
    /// FFT plans + resample/spectrum/periodogram scratch.
    pub(crate) signal: SignalWorkspace,
    /// Per-stage wall-clock accumulated since the last reset.
    pub(crate) timings: StageTimings,
    // --- cycle stage ---
    /// Finite-filtered `(t, v)` samples.
    pub(crate) finite: Vec<(f64, f64)>,
    /// 1 Hz resampled speed grid.
    pub(crate) grid: Vec<f64>,
    /// In-band DFT candidates plus their subdivisions.
    pub(crate) candidates: Vec<PeriodEstimate>,
    /// `(period, fold score, bin, snr)` per refined candidate.
    pub(crate) scored: Vec<(f64, f64, usize, f64)>,
    // --- enhancement stage ---
    /// Slot-merged primary samples.
    pub(crate) prim: Vec<(f64, f64)>,
    /// Slot-merged perpendicular samples.
    pub(crate) perp: Vec<(f64, f64)>,
    /// Eq. (3) output: primary plus mirrored perpendicular.
    pub(crate) enhanced: Vec<(f64, f64)>,
    /// Seconds already covered by the primary road.
    pub(crate) have: HashSet<i64>,
    /// Same-axis observation pool of the whole intersection.
    pub(crate) pool_primary: Vec<(f64, f64)>,
    /// Perpendicular-axis pool (to be mirrored).
    pub(crate) pool_perpendicular: Vec<(f64, f64)>,
    // --- superpose / change-point stage ---
    /// `(folded t, v, index)` sort scratch reproducing the stable fold
    /// order without allocation.
    pub(crate) folded: Vec<(f64, f64, usize)>,
    /// Per-second value sums of the folded cycle.
    pub(crate) sums: Vec<f64>,
    /// Per-second sample counts of the folded cycle.
    pub(crate) bin_counts: Vec<u32>,
    /// Per-second means, `None` where no sample landed.
    pub(crate) binned: Vec<Option<f64>>,
    /// Indices of the filled bins (gap-fill scratch).
    pub(crate) filled: Vec<usize>,
    /// The gap-filled 1 Hz cyclic speed profile.
    pub(crate) profile: Vec<f64>,
    /// Red-window moving average of the profile.
    pub(crate) averaged: Vec<f64>,
    /// 3 s moving average used by the edge refinement.
    pub(crate) smoothed: Vec<f64>,
    /// Folded histogram of per-stop green-onset estimates.
    pub(crate) onset_counts: Vec<f64>,
    /// Kernel-smoothed onset histogram.
    pub(crate) onset_smoothed: Vec<f64>,
    // --- pipeline glue ---
    /// In-zone stops feeding the red-duration classifier.
    pub(crate) stops: Vec<Stop>,
    /// Per-stop green-onset estimates, window-relative seconds.
    pub(crate) onsets: Vec<f64>,
    /// `(t, speed)` samples near the stop line.
    pub(crate) speed: Vec<(f64, f64)>,
}

impl IdentifyWorkspace {
    /// An empty workspace; buffers grow on first use and are kept after.
    pub fn new() -> Self {
        IdentifyWorkspace::default()
    }

    /// Per-stage wall-clock accumulated since the last
    /// [`reset_run_stats`](Self::reset_run_stats).
    pub fn timings(&self) -> StageTimings {
        self.timings
    }

    /// Hit/miss counters of the owned FFT plan cache since the last
    /// [`reset_run_stats`](Self::reset_run_stats).
    pub fn plan_stats(&self) -> PlanCacheStats {
        self.signal.plan_stats()
    }

    /// Zeroes the timing and plan-cache counters. Cached plans and grown
    /// buffers are kept — that is the whole point of reuse.
    pub fn reset_run_stats(&mut self) {
        self.timings = StageTimings::default();
        self.signal.reset_plan_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_timings_merge_and_total() {
        let mut a = StageTimings::from_nanos(1_000_000_000, 500_000_000, 250_000_000);
        let b = StageTimings::from_nanos(2_000_000_000, 1_000_000_000, 750_000_000);
        a.merge(&b);
        assert_eq!(a, StageTimings::from_nanos(3_000_000_000, 1_500_000_000, 1_000_000_000));
        assert_eq!(a.total_s(), 5.5);
        assert_eq!((a.cycle_s(), a.red_s(), a.change_s()), (3.0, 1.5, 1.0));
    }

    #[test]
    fn stage_timings_merge_is_permutation_invariant() {
        // Integer nanosecond accumulation makes the merged total exactly
        // independent of worker count and merge order — the property the
        // engine relies on for sharded == serial stage totals.
        let parts: Vec<StageTimings> = (0..7u64)
            .map(|k| StageTimings::from_nanos(k * 13 + 1, k * 7 + 2, k * 29 + 3))
            .collect();
        let mut forward = StageTimings::default();
        for p in &parts {
            forward.merge(p);
        }
        let mut reverse = StageTimings::default();
        for p in parts.iter().rev() {
            reverse.merge(p);
        }
        // Pairwise tree merge (as a 4-shard run would produce).
        let mut pairs: Vec<StageTimings> = parts
            .chunks(2)
            .map(|c| {
                let mut acc = c[0];
                if let Some(second) = c.get(1) {
                    acc.merge(second);
                }
                acc
            })
            .collect();
        while pairs.len() > 1 {
            let top = pairs.pop().unwrap();
            pairs[0].merge(&top);
        }
        assert_eq!(forward, reverse);
        assert_eq!(forward, pairs[0]);
    }

    #[test]
    fn reset_clears_counters_keeps_plans() {
        let mut ws = IdentifyWorkspace::new();
        ws.timings.add_cycle(std::time::Duration::from_secs(1));
        let sig: Vec<f64> = (0..256).map(|k| (k % 7) as f64).collect();
        ws.signal.dominant_period(
            &sig,
            1.0,
            taxilight_signal::periodogram::PeriodBand::TRAFFIC_LIGHTS,
            false,
            taxilight_signal::periodogram::SpectrumPath::Exact,
        );
        assert_eq!(ws.plan_stats().misses(), 1);
        ws.reset_run_stats();
        assert_eq!(ws.timings(), StageTimings::default());
        assert_eq!(ws.plan_stats(), PlanCacheStats::default());
    }
}
