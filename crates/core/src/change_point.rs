//! Signal-change identification (paper Sec. VI-C, Fig. 11).
//!
//! When the light turns red the queue grows and the mean speed of vehicles
//! near the stop line decreases monotonically, bottoming out exactly when
//! the light turns green. Sliding a window of one *red duration* over the
//! superposed cycle (circular moving average "using convolution
//! operation") therefore reaches its minimum when the window coincides
//! with the red phase — the window start is the green→red change, the
//! window end the red→green change.

use crate::superpose::cycle_profile;
use taxilight_signal::convolution::{argmin, circular_moving_average};

/// A signal-change estimate, in fold coordinates: absolute times
/// `t ≡ red_start_s (mod cycle_s)` are green→red changes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChangePointEstimate {
    /// Offset of the red onset within the cycle, seconds (fold anchor:
    /// absolute time 0).
    pub red_start_s: f64,
    /// Offset of the red→green change: `(red_start_s + red_s) mod cycle_s`.
    pub green_start_s: f64,
    /// Minimum windowed mean speed (diagnostic: near zero for a busy
    /// approach).
    pub min_windowed_speed: f64,
}

/// Why change-point identification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChangePointError {
    /// No speed samples were provided.
    NoSamples,
    /// Cycle or red duration degenerate.
    BadParameters,
}

impl std::fmt::Display for ChangePointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChangePointError::NoSamples => write!(f, "NoSamples: empty speed sample set"),
            ChangePointError::BadParameters => write!(f, "BadParameters: cycle/red degenerate"),
        }
    }
}

impl std::error::Error for ChangePointError {}

/// Identifies the signal-change time from `(t_abs_s, speed)` samples given
/// the identified `cycle_s` and `red_s`.
#[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0)` deliberately rejects NaN too
pub fn identify_change_point(
    samples: &[(f64, f64)],
    cycle_s: f64,
    red_s: f64,
) -> Result<ChangePointEstimate, ChangePointError> {
    if !(cycle_s > 1.0) || !(red_s > 0.0) || red_s >= cycle_s {
        return Err(ChangePointError::BadParameters);
    }
    if samples.is_empty() {
        return Err(ChangePointError::NoSamples);
    }
    let profile = cycle_profile(samples, cycle_s);
    let window = (red_s.round() as usize).clamp(1, profile.len());
    let averaged = circular_moving_average(&profile, window);
    let start = argmin(&averaged).expect("profile is non-empty");

    // Edge refinement: the raw window minimum lags the true red onset —
    // the queue needs several seconds to form after the light turns red,
    // and discharge keeps speeds low into early green, so the low-speed
    // block sits a little late. Snap to the falling edge (the crossing of
    // the red/green midpoint level) nearest the window start.
    let n = profile.len();
    let smoothed = circular_moving_average(&profile, 3);
    let low = averaged[start];
    let high = averaged.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let refined = if high - low > 1.0 {
        let mid = 0.5 * (low + high);
        // Search a window around the raw start for the latest
        // above-midpoint → below-midpoint transition.
        let mut best: Option<(usize, usize)> = None; // (distance, index)
        for d in -((n as i64).min(20))..=10 {
            let j = ((start as i64 + d).rem_euclid(n as i64)) as usize;
            let prev = (j + n - 1) % n;
            if smoothed[prev] >= mid && smoothed[j] < mid {
                let dist = d.unsigned_abs() as usize;
                if best.is_none_or(|(bd, _)| dist < bd) {
                    best = Some((dist, j));
                }
            }
        }
        best.map(|(_, j)| j).unwrap_or(start)
    } else {
        start
    };

    Ok(ChangePointEstimate {
        red_start_s: refined as f64,
        green_start_s: (refined as f64 + red_s) % cycle_s,
        min_windowed_speed: averaged[start],
    })
}

/// Stop-based green-onset estimator: each queue stop dissolves when the
/// light turns green, so the per-stop green-onset estimates
/// ([`crate::red::Stop::green_onset_estimate_s`]) cluster sharply at the
/// true change. Their circular mode (kernel-smoothed histogram over the
/// fold) locates it. Returns the onset in fold coordinates (absolute time
/// mod `cycle_s`) or `None` when fewer than `min_stops` estimates exist.
#[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 1)` deliberately rejects NaN too
pub fn green_onset_from_stops(
    onset_estimates_abs_s: &[f64],
    cycle_s: f64,
    min_stops: usize,
) -> Option<f64> {
    if !(cycle_s > 1.0) || onset_estimates_abs_s.len() < min_stops.max(1) {
        return None;
    }
    let n = cycle_s.round() as usize;
    let mut counts = vec![0.0f64; n];
    for &t in onset_estimates_abs_s {
        let idx = (t.rem_euclid(cycle_s) as usize).min(n - 1);
        counts[idx] += 1.0;
    }
    // Circular triangular kernel, ±4 s.
    let mut smoothed = vec![0.0f64; n];
    for (i, s) in smoothed.iter_mut().enumerate() {
        for d in -4i64..=4 {
            let j = ((i as i64 + d).rem_euclid(n as i64)) as usize;
            *s += counts[j] * (5.0 - d.abs() as f64);
        }
    }
    taxilight_signal::convolution::argmax(&smoothed).map(|i| i as f64)
}

impl crate::workspace::IdentifyWorkspace {
    /// Workspace twin of [`identify_change_point`], bit-identical with
    /// zero steady-state allocations (profile, moving averages and the
    /// refinement scratch all live in the workspace).
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0)` deliberately rejects NaN too
    pub(crate) fn change_point(
        &mut self,
        samples: &[(f64, f64)],
        cycle_s: f64,
        red_s: f64,
    ) -> Result<ChangePointEstimate, ChangePointError> {
        if !(cycle_s > 1.0) || !(red_s > 0.0) || red_s >= cycle_s {
            return Err(ChangePointError::BadParameters);
        }
        if samples.is_empty() {
            return Err(ChangePointError::NoSamples);
        }
        let _span = taxilight_obs::span!("change_point.search", cycle_s = cycle_s, red_s = red_s);
        self.cycle_profile(samples, cycle_s);
        let window = (red_s.round() as usize).clamp(1, self.profile.len());
        taxilight_signal::convolution::circular_moving_average_into(
            &self.profile,
            window,
            &mut self.averaged,
        );
        let start = argmin(&self.averaged).expect("profile is non-empty");

        let n = self.profile.len();
        taxilight_signal::convolution::circular_moving_average_into(
            &self.profile,
            3,
            &mut self.smoothed,
        );
        let low = self.averaged[start];
        let high = self.averaged.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let refined = if high - low > 1.0 {
            let mid = 0.5 * (low + high);
            let mut best: Option<(usize, usize)> = None; // (distance, index)
            for d in -((n as i64).min(20))..=10 {
                let j = ((start as i64 + d).rem_euclid(n as i64)) as usize;
                let prev = (j + n - 1) % n;
                if self.smoothed[prev] >= mid && self.smoothed[j] < mid {
                    let dist = d.unsigned_abs() as usize;
                    if best.is_none_or(|(bd, _)| dist < bd) {
                        best = Some((dist, j));
                    }
                }
            }
            best.map(|(_, j)| j).unwrap_or(start)
        } else {
            start
        };

        Ok(ChangePointEstimate {
            red_start_s: refined as f64,
            green_start_s: (refined as f64 + red_s) % cycle_s,
            min_windowed_speed: self.averaged[start],
        })
    }

    /// Workspace twin of [`green_onset_from_stops`] (histogram and kernel
    /// buffers reused).
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 1)` deliberately rejects NaN too
    pub(crate) fn green_onset_from_stops(
        &mut self,
        onset_estimates_abs_s: &[f64],
        cycle_s: f64,
        min_stops: usize,
    ) -> Option<f64> {
        if !(cycle_s > 1.0) || onset_estimates_abs_s.len() < min_stops.max(1) {
            return None;
        }
        let n = cycle_s.round() as usize;
        self.onset_counts.clear();
        self.onset_counts.resize(n, 0.0);
        for &t in onset_estimates_abs_s {
            let idx = (t.rem_euclid(cycle_s) as usize).min(n - 1);
            self.onset_counts[idx] += 1.0;
        }
        self.onset_smoothed.clear();
        self.onset_smoothed.resize(n, 0.0);
        for i in 0..n {
            let mut s = 0.0;
            for d in -4i64..=4 {
                let j = ((i as i64 + d).rem_euclid(n as i64)) as usize;
                s += self.onset_counts[j] * (5.0 - d.abs() as f64);
            }
            self.onset_smoothed[i] = s;
        }
        taxilight_signal::convolution::argmax(&self.onset_smoothed).map(|i| i as f64)
    }
}

/// Joint red-window fit against the folded speed profile.
///
/// The red phase is the contiguous low-speed block of the cycle profile.
/// Given the sharp stop-based green onset (the block's *end*) and the
/// border-interval red duration as a prior, sweep the red length within
/// `±tolerance_s` and keep the length whose window (ending at the green
/// onset) maximises the outside-minus-inside mean-speed separation.
/// Returns `(red_start, red_len)` in fold coordinates.
pub fn fit_red_anchored(
    profile: &[f64],
    green_onset: f64,
    red_prior_s: f64,
    tolerance_s: f64,
) -> Option<(f64, f64)> {
    let n = profile.len();
    if n < 10 {
        return None;
    }
    let total: f64 = profile.iter().sum();
    // Circular prefix sums for O(1) window means.
    let mut prefix = Vec::with_capacity(2 * n + 1);
    prefix.push(0.0);
    for k in 0..2 * n {
        prefix.push(prefix[k] + profile[k % n]);
    }
    let window_sum = |start: usize, len: usize| prefix[start + len] - prefix[start];

    let lo = (red_prior_s - tolerance_s).max(5.0) as usize;
    let hi = (red_prior_s + tolerance_s).min(n as f64 - 5.0) as usize;
    if lo >= hi {
        return None;
    }
    let g = (green_onset.rem_euclid(n as f64)) as usize;
    let mut best: Option<(f64, usize)> = None; // (separation, len)
    for len in lo..=hi {
        let start = (g + n - len) % n;
        let inside = window_sum(start, len) / len as f64;
        let outside = (total - window_sum(start, len)) / (n - len) as f64;
        let separation = outside - inside;
        if best.is_none_or(|(s, _)| separation > s) {
            best = Some((separation, len));
        }
    }
    best.map(|(_, len)| (((g + n - len) % n) as f64, len as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sparse samples of a red/green square wave with the given phase.
    fn square_samples(
        cycle: f64,
        red: f64,
        red_start: f64,
        span: f64,
        gap: f64,
        seed: u64,
    ) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let mut t = 0.0;
        let mut state = seed.max(1);
        while t < span {
            let pos = (t - red_start).rem_euclid(cycle);
            let v = if pos < red { 1.5 } else { 38.0 };
            out.push((t, v));
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            t += gap * (0.5 + (state >> 40) as f64 / (1u64 << 24) as f64);
        }
        out
    }

    #[test]
    fn fig11_worked_example() {
        // Paper Fig. 11: cycle 98 s, red 39 s, truth green→red at 41 s; the
        // algorithm identified 44 s (3 s error). We require a few seconds'
        // accuracy on clean synthetic data.
        let samples = square_samples(98.0, 39.0, 41.0, 98.0 * 30.0, 8.0, 3);
        let est = identify_change_point(&samples, 98.0, 39.0).unwrap();
        let err = (est.red_start_s - 41.0).abs().min(98.0 - (est.red_start_s - 41.0).abs());
        assert!(err < 4.0, "red start {} vs truth 41", est.red_start_s);
        assert!(est.min_windowed_speed < 8.0);
        assert!((est.green_start_s - (est.red_start_s + 39.0) % 98.0).abs() < 1e-9);
    }

    #[test]
    fn phase_is_recovered_across_the_wrap() {
        // Red phase straddling the fold boundary (red start near cycle end).
        let samples = square_samples(100.0, 40.0, 85.0, 4_000.0, 9.0, 5);
        let est = identify_change_point(&samples, 100.0, 40.0).unwrap();
        let err = (est.red_start_s - 85.0).abs();
        let circ = err.min(100.0 - err);
        assert!(circ < 5.0, "red start {} vs truth 85", est.red_start_s);
    }

    #[test]
    fn sparse_data_still_locates_phase() {
        // ~1 sample / 25 s — the paper's density; needs superposition depth.
        let samples = square_samples(106.0, 63.0, 20.0, 106.0 * 40.0, 25.0, 11);
        let est = identify_change_point(&samples, 106.0, 63.0).unwrap();
        let err = (est.red_start_s - 20.0).abs();
        let circ = err.min(106.0 - err);
        assert!(circ < 8.0, "red start {}", est.red_start_s);
    }

    #[test]
    fn superposition_depth_ablation() {
        // DESIGN.md ablation: more folded cycles → error does not grow.
        let truth = 33.0;
        let err_for = |cycles: f64| {
            let samples = square_samples(98.0, 39.0, truth, 98.0 * cycles, 22.0, 7);
            let est = identify_change_point(&samples, 98.0, 39.0).unwrap();
            let e = (est.red_start_s - truth).abs();
            e.min(98.0 - e)
        };
        let shallow = err_for(4.0);
        let deep = err_for(40.0);
        assert!(deep <= shallow + 3.0, "deep {deep} vs shallow {shallow}");
        assert!(deep < 8.0);
    }

    #[test]
    fn anchored_fit_recovers_red_length() {
        // Profile: red [20, 65) slow, green fast; anchor = 65.
        let profile: Vec<f64> =
            (0..100).map(|i| if (20..65).contains(&i) { 2.0 } else { 40.0 }).collect();
        let (start, len) = fit_red_anchored(&profile, 65.0, 40.0, 20.0).unwrap();
        assert!((len - 45.0).abs() <= 1.0, "len {len}");
        assert!((start - 20.0).abs() <= 1.0, "start {start}");
    }

    #[test]
    fn anchored_fit_respects_tolerance_and_degenerates() {
        let profile: Vec<f64> =
            (0..100).map(|i| if (20..65).contains(&i) { 2.0 } else { 40.0 }).collect();
        // Tolerance too small to reach the true 45 s: stays inside the band.
        let (_, len) = fit_red_anchored(&profile, 65.0, 30.0, 5.0).unwrap();
        assert!((25.0..=35.0).contains(&len), "len {len}");
        // Degenerate inputs.
        assert!(fit_red_anchored(&[1.0; 5], 2.0, 3.0, 1.0).is_none());
        assert!(fit_red_anchored(&profile, 65.0, 200.0, 1.0).is_none(), "band outside cycle");
    }

    #[test]
    fn anchored_fit_handles_wrapping_red() {
        // Red straddles the fold boundary: red [80..100) ∪ [0..25), green
        // onset at 25.
        let profile: Vec<f64> =
            (0..100).map(|i| if !(25..80).contains(&i) { 2.0 } else { 40.0 }).collect();
        let (start, len) = fit_red_anchored(&profile, 25.0, 45.0, 15.0).unwrap();
        assert!((len - 45.0).abs() <= 1.0, "len {len}");
        assert!((start - 80.0).abs() <= 1.0, "start {start}");
    }

    #[test]
    fn error_cases() {
        assert_eq!(identify_change_point(&[], 98.0, 39.0), Err(ChangePointError::NoSamples));
        let s = vec![(0.0, 10.0)];
        assert_eq!(identify_change_point(&s, 0.0, 39.0), Err(ChangePointError::BadParameters));
        assert_eq!(identify_change_point(&s, 98.0, 0.0), Err(ChangePointError::BadParameters));
        assert_eq!(identify_change_point(&s, 98.0, 98.0), Err(ChangePointError::BadParameters));
        assert!(ChangePointError::NoSamples.to_string().contains("NoSamples"));
    }

    /// The workspace change-point and onset-histogram paths are
    /// bit-identical twins of the allocating references, across reuse and
    /// error cases.
    #[test]
    #[allow(clippy::type_complexity)]
    fn workspace_change_point_matches_allocating_bitwise() {
        let mut ws = crate::workspace::IdentifyWorkspace::new();
        let cases: Vec<(Vec<(f64, f64)>, f64, f64)> = vec![
            (square_samples(98.0, 39.0, 41.0, 98.0 * 30.0, 8.0, 3), 98.0, 39.0),
            (square_samples(100.0, 40.0, 85.0, 4_000.0, 9.0, 5), 100.0, 40.0),
            (square_samples(106.0, 63.0, 20.0, 106.0 * 40.0, 25.0, 11), 106.0, 63.0),
            (vec![], 98.0, 39.0),
            (vec![(0.0, 10.0)], 0.0, 39.0),
            (vec![(0.0, 10.0)], 98.0, 98.0),
            // Flat profile: skips the edge refinement branch.
            ((0..200).map(|k| (k as f64 * 7.0, 20.0)).collect(), 90.0, 30.0),
        ];
        for (samples, cycle_s, red_s) in &cases {
            let reference = identify_change_point(samples, *cycle_s, *red_s);
            let got = ws.change_point(samples, *cycle_s, *red_s);
            match (&got, &reference) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.red_start_s.to_bits(), b.red_start_s.to_bits());
                    assert_eq!(a.green_start_s.to_bits(), b.green_start_s.to_bits());
                    assert_eq!(a.min_windowed_speed.to_bits(), b.min_windowed_speed.to_bits());
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                _ => panic!("divergence: {got:?} vs {reference:?}"),
            }
        }

        let onsets: Vec<f64> = (0..40).map(|k| 41.0 + 98.0 * k as f64 + (k % 5) as f64).collect();
        for (set, cycle, min_stops) in
            [(&onsets[..], 98.0, 8), (&onsets[..3], 98.0, 8), (&onsets[..], 0.5, 1)]
        {
            let reference = green_onset_from_stops(set, cycle, min_stops);
            let got = ws.green_onset_from_stops(set, cycle, min_stops);
            assert_eq!(
                got.map(f64::to_bits),
                reference.map(f64::to_bits),
                "onset divergence at cycle {cycle}"
            );
        }
    }

    #[test]
    fn wrong_red_duration_still_near_red_region() {
        // Even with a ±15 % red-duration error the window minimum stays in
        // the red neighbourhood (robustness of the moving-average design).
        let samples = square_samples(98.0, 39.0, 41.0, 98.0 * 30.0, 10.0, 13);
        for red_guess in [33.0, 45.0] {
            let est = identify_change_point(&samples, 98.0, red_guess).unwrap();
            let err = (est.red_start_s - 41.0).abs();
            let circ = err.min(98.0 - err);
            assert!(circ < 12.0, "guess {red_guess}: red start {}", est.red_start_s);
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn recovered_phase_within_tolerance(cycle in 60.0f64..200.0,
                                                red_frac in 0.3f64..0.7,
                                                phase_frac in 0.0f64..1.0) {
                let red = (cycle * red_frac).round();
                let red_start = (cycle * phase_frac).round() % cycle;
                let samples = square_samples(cycle, red, red_start, cycle * 30.0, 12.0, 17);
                let est = identify_change_point(&samples, cycle, red).unwrap();
                let err = (est.red_start_s - red_start).abs();
                let circ = err.min(cycle - err);
                prop_assert!(circ < 8.0, "cycle {} red {} start {}: est {}",
                             cycle, red, red_start, est.red_start_s);
            }

            #[test]
            fn outputs_always_in_cycle_range(cycle in 40.0f64..150.0, red_frac in 0.2f64..0.8) {
                let red = (cycle * red_frac).max(1.0).min(cycle - 1.0);
                let samples = square_samples(cycle, red, 10.0, cycle * 10.0, 15.0, 19);
                let est = identify_change_point(&samples, cycle, red).unwrap();
                prop_assert!((0.0..cycle).contains(&est.red_start_s));
                prop_assert!((0.0..cycle).contains(&est.green_start_s));
            }
        }
    }
}
