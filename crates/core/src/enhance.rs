//! Intersection-based enhancement (paper Sec. V-B, Eq. 3).
//!
//! All lights at one crossroad share the cycle length, and perpendicular
//! flows move in antiphase: cars on the N-S road flow while the E-W road
//! waits. When one approach's data is too sparse for a clean spectrum, the
//! perpendicular approach's samples are **mirrored about the intersection
//! mean speed** and merged in:
//!
//! ```text
//!           ⎧ v_t                      primary sample exists
//! v_t^e  =  ⎨ max(0, 2·v̄ − v_t^p)     only perpendicular exists
//!           ⎩ ∅                        otherwise
//! ```

use crate::config::IdentifyConfig;
use crate::cycle::{identify_cycle_from_samples, speed_samples, CycleError, CycleEstimate};
use crate::preprocess::LightObs;
use taxilight_signal::interpolate::merge_coincident;
use taxilight_trace::time::Timestamp;

/// Applies Eq. (3): merges `primary` samples with mirrored `perpendicular`
/// samples at the seconds where the primary road has none. Inputs are
/// `(t, speed)` pairs (any order); the output is slot-merged and sorted.
pub fn mirror_enhance(primary: &[(f64, f64)], perpendicular: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let prim = merge_coincident(primary);
    let perp = merge_coincident(perpendicular);
    if perp.is_empty() {
        return prim;
    }
    // v̄: the intersection's mean speed over both roads.
    let total: f64 = prim.iter().map(|p| p.1).chain(perp.iter().map(|p| p.1)).sum();
    let count = prim.len() + perp.len();
    let v_bar = total / count as f64;

    let mut out = prim.clone();
    let have: std::collections::HashSet<i64> = prim.iter().map(|&(t, _)| t as i64).collect();
    for &(t, v_p) in &perp {
        if !have.contains(&(t as i64)) {
            out.push((t, (2.0 * v_bar - v_p).max(0.0)));
        }
    }
    out.sort_by(|a, b| a.0.total_cmp(&b.0));
    out
}

/// Cycle identification with enhancement: uses the perpendicular
/// approach's observations to densify the primary's input (both windows
/// relative to `t0`, grid of `t1 - t0` seconds).
pub fn identify_cycle_enhanced(
    primary: &[LightObs],
    perpendicular: &[LightObs],
    t0: Timestamp,
    t1: Timestamp,
    cfg: &IdentifyConfig,
) -> Result<CycleEstimate, CycleError> {
    let prim = speed_samples(primary, t0, cfg.influence_radius_m);
    let perp = speed_samples(perpendicular, t0, cfg.influence_radius_m);
    let merged = mirror_enhance(&prim, &perp);
    identify_cycle_from_samples(&merged, t1.delta(t0) as usize, cfg)
}

impl crate::workspace::IdentifyWorkspace {
    /// Workspace twin of [`mirror_enhance`] over the pools in
    /// `self.pool_primary` / `self.pool_perpendicular`, writing the merged
    /// Eq. (3) series into `self.enhanced`. Bit-identical to the reference:
    /// the final sort's keys are provably distinct (slot-merged primary
    /// seconds, plus perpendicular seconds that pass the `have` filter), so
    /// the unstable sort reproduces the stable order exactly.
    pub(crate) fn mirror_enhance_pools(&mut self) {
        self.signal.merge_coincident_into(&self.pool_primary, &mut self.prim);
        self.signal.merge_coincident_into(&self.pool_perpendicular, &mut self.perp);
        self.enhanced.clear();
        self.enhanced.extend_from_slice(&self.prim);
        if self.perp.is_empty() {
            return;
        }
        let total: f64 = self.prim.iter().map(|p| p.1).chain(self.perp.iter().map(|p| p.1)).sum();
        let count = self.prim.len() + self.perp.len();
        let v_bar = total / count as f64;

        self.have.clear();
        self.have.extend(self.prim.iter().map(|&(t, _)| t as i64));
        for &(t, v_p) in &self.perp {
            if !self.have.contains(&(t as i64)) {
                self.enhanced.push((t, (2.0 * v_bar - v_p).max(0.0)));
            }
        }
        self.enhanced.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::testutil::{planted_obs, Lcg};

    /// The pooled workspace variant is bit-identical to [`mirror_enhance`]
    /// across reuse, including empty pools on both sides.
    #[test]
    #[allow(clippy::type_complexity)]
    fn workspace_enhance_matches_allocating_bitwise() {
        let mut rng = Lcg(77);
        let mut ws = crate::workspace::IdentifyWorkspace::new();
        let mut cases: Vec<(Vec<(f64, f64)>, Vec<(f64, f64)>)> = vec![
            (vec![(10.0, 40.0), (30.0, 0.0)], vec![(10.0, 0.0), (20.0, 40.0), (40.0, 0.0)]),
            (vec![(3.0, 12.0), (9.0, 30.0)], vec![]),
            (vec![], vec![(1.0, 80.0), (1.4, 10.0)]),
            (vec![], vec![]),
            (vec![(0.0, 0.0)], vec![(1.0, 80.0)]),
        ];
        for _ in 0..6 {
            let n = (rng.range(0.0, 60.0)) as usize;
            let m = (rng.range(0.0, 60.0)) as usize;
            let mk = |rng: &mut Lcg, k: usize| {
                (0..k).map(|_| (rng.range(-5.0, 900.0), rng.range(0.0, 55.0))).collect::<Vec<_>>()
            };
            let p = mk(&mut rng, n);
            let q = mk(&mut rng, m);
            cases.push((p, q));
        }
        for (primary, perpendicular) in cases {
            let reference = mirror_enhance(&primary, &perpendicular);
            ws.pool_primary.clear();
            ws.pool_primary.extend_from_slice(&primary);
            ws.pool_perpendicular.clear();
            ws.pool_perpendicular.extend_from_slice(&perpendicular);
            ws.mirror_enhance_pools();
            assert_eq!(ws.enhanced.len(), reference.len());
            for (a, b) in ws.enhanced.iter().zip(&reference) {
                assert_eq!(a.0.to_bits(), b.0.to_bits());
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
    }

    #[test]
    fn mirroring_fills_only_missing_seconds() {
        let primary = vec![(10.0, 40.0), (30.0, 0.0)];
        let perpendicular = vec![(10.0, 0.0), (20.0, 40.0), (40.0, 0.0)];
        // v̄ = (40 + 0 + 0 + 40 + 0) / 5 = 16.
        let merged = mirror_enhance(&primary, &perpendicular);
        assert_eq!(merged.len(), 4);
        assert_eq!(merged[0], (10.0, 40.0)); // primary kept verbatim
                                             // t=20: mirrored: max(0, 32 - 40) = 0.
        assert_eq!(merged[1], (20.0, 0.0));
        assert_eq!(merged[2], (30.0, 0.0));
        // t=40: mirrored: max(0, 32 - 0) = 32.
        assert_eq!(merged[3], (40.0, 32.0));
    }

    #[test]
    fn mirror_is_antiphase_in_spirit() {
        // Against the same intersection mean (set by the primary's
        // baseline), a fast perpendicular sample mirrors to a slow primary
        // value and a slow one to a fast value.
        let baseline = [(0.0, 20.0), (1.0, 20.0)];
        let perp_green = mirror_enhance(&baseline, &[(5.0, 45.0)]);
        let perp_red = mirror_enhance(&baseline, &[(5.0, 0.0)]);
        let mirrored_of = |v: &Vec<(f64, f64)>| v.iter().find(|p| p.0 == 5.0).unwrap().1;
        assert!(
            mirrored_of(&perp_green) < mirrored_of(&perp_red),
            "fast perpendicular ⇒ slow primary: {} vs {}",
            mirrored_of(&perp_green),
            mirrored_of(&perp_red)
        );
    }

    #[test]
    fn empty_perpendicular_is_identity() {
        let primary = vec![(3.0, 12.0), (9.0, 30.0)];
        assert_eq!(mirror_enhance(&primary, &[]), merge_coincident(&primary));
        assert!(mirror_enhance(&[], &[]).is_empty());
    }

    #[test]
    fn negative_mirrors_clamp_to_zero() {
        // Very fast perpendicular with slow mean ⇒ mirror would be negative.
        let merged = mirror_enhance(&[(0.0, 0.0)], &[(1.0, 80.0)]);
        assert!(merged[1].1 >= 0.0);
    }

    #[test]
    fn enhancement_recovers_cycle_where_sparse_primary_fails() {
        // Primary: ~1 sample / 55 s — far too sparse for a clean spectrum.
        // Perpendicular (antiphase, offset shifted by red duration): same
        // sparsity. Together they succeed.
        let cycle = 110;
        let red = 50;
        let primary = planted_obs(cycle, red, 0, 3600, 55.0, 21);
        // Perpendicular road: red exactly while primary is green.
        let perpendicular = planted_obs(cycle, cycle - red, red, 3600, 55.0, 22);

        let cfg = IdentifyConfig { min_snr: 1.0, ..IdentifyConfig::default() };
        let solo = identify_cycle_from_samples(
            &speed_samples(&primary, Timestamp(0), cfg.influence_radius_m),
            3600,
            &cfg,
        );
        let enhanced =
            identify_cycle_enhanced(&primary, &perpendicular, Timestamp(0), Timestamp(3600), &cfg)
                .unwrap();
        let err_enhanced = (enhanced.cycle_s - cycle as f64).abs();
        let err_solo = solo.map(|e| (e.cycle_s - cycle as f64).abs()).unwrap_or(f64::INFINITY);
        assert!(
            err_enhanced < 8.0,
            "enhanced estimate {} should be near {cycle}",
            enhanced.cycle_s
        );
        assert!(
            err_enhanced <= err_solo + 1.0,
            "enhancement must not hurt: solo {err_solo}, enhanced {err_enhanced}"
        );
    }

    #[test]
    fn enhancement_uses_more_samples() {
        let primary = planted_obs(100, 45, 0, 1800, 40.0, 31);
        let perpendicular = planted_obs(100, 55, 45, 1800, 40.0, 32);
        let cfg = IdentifyConfig { min_snr: 1.0, ..IdentifyConfig::default() };
        let enhanced =
            identify_cycle_enhanced(&primary, &perpendicular, Timestamp(0), Timestamp(1800), &cfg)
                .unwrap();
        assert!(enhanced.samples_used > primary.len());
    }

    #[test]
    fn mean_of_merged_preserves_scale() {
        // Mirrored values stay in a physically sensible band around v̄.
        let mut rng = Lcg(5);
        let primary: Vec<(f64, f64)> =
            (0..50).map(|k| (k as f64 * 7.0, rng.range(0.0, 50.0))).collect();
        let perpendicular: Vec<(f64, f64)> =
            (0..50).map(|k| (k as f64 * 7.0 + 3.0, rng.range(0.0, 50.0))).collect();
        for (_, v) in mirror_enhance(&primary, &perpendicular) {
            assert!((0.0..=100.0).contains(&v), "mirrored speed {v} out of band");
        }
    }
}
