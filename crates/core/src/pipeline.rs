//! The full per-light identification pipeline and the city-scale parallel
//! driver (paper Fig. 4).
//!
//! For one light at evaluation instant `at`, the pipeline analyses the
//! window `[at − window, at)`:
//!
//! 1. cycle length via frequency analysis, falling back to the
//!    intersection-based enhancement when the approach's data is sparse;
//! 2. red duration via longest-stop statistics;
//! 3. signal change via superposition + sliding-window minimum, with the
//!    fold anchored at the window start so cycle-quantisation error cannot
//!    scramble the phase.
//!
//! After partitioning, lights are independent — the parallelism the paper
//! points out in Sec. IV. The sharded fan-out lives in [`crate::engine`];
//! this module holds the per-light stages the engine drives. The 0.2-era
//! deprecated free functions were removed in 0.3 — see `docs/api.md`.

use std::sync::OnceLock;
use std::time::Instant;

use taxilight_obs::metrics::{self, Counter, MetricClass};
use taxilight_obs::{event, span};

use crate::change_point::ChangePointError;
use crate::config::{ConfigError, IdentifyConfig};
use crate::cycle::CycleError;
use crate::preprocess::{LightObs, PartitionedTraces};
use crate::red::{extract_stops, red_duration, RedError};
use crate::workspace::IdentifyWorkspace;
use taxilight_roadnet::graph::{LightId, RoadNetwork};
use taxilight_trace::geo::heading_difference;
use taxilight_trace::time::Timestamp;

/// Registry name of the kernel-time counter: nanoseconds spent inside
/// dispatched `taxilight-signal` kernels (spectrum, resample grid
/// evaluation), labelled with the active dispatch path. A subset of the
/// stage wall-clock counters — lets traces and snapshots separate
/// vectorized-kernel time from surrounding orchestration.
pub const STAGE_KERNEL_NANOS_METRIC: &str = "taxilight_stage_kernel_ns_total";

/// Drains kernel nanoseconds accumulated by the signal workspace since the
/// last drain into the stage timings and the process-wide counter. Called
/// after each timed stage so `kernel_ns` stays a subset of the stage
/// totals. The counter handle is registered once (registration locks the
/// registry); updates are a single relaxed atomic add — hot-path safe.
fn drain_kernel_time(ws: &mut IdentifyWorkspace) {
    let ns = ws.signal.take_kernel_nanos();
    if ns == 0 {
        return;
    }
    ws.timings.add_kernel_ns(ns);
    static KERNEL_COUNTER: OnceLock<Counter> = OnceLock::new();
    KERNEL_COUNTER
        .get_or_init(|| {
            // Volatile: wall-clock time, never byte-reproducible.
            metrics::global().counter(
                STAGE_KERNEL_NANOS_METRIC,
                &[("path", taxilight_signal::kernels::active_path_name())],
                MetricClass::Volatile,
                "Nanoseconds spent inside dispatched taxilight-signal kernels",
            )
        })
        .add(ns);
}

/// The identified schedule of one light — the paper's Fig. 3 parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LightSchedule {
    /// Which light.
    pub light: LightId,
    /// Cycle length, seconds.
    pub cycle_s: f64,
    /// Red duration, seconds (yellow folded into red).
    pub red_s: f64,
    /// Green duration: `cycle_s − red_s`.
    pub green_s: f64,
    /// An absolute time (seconds since the epoch, near the analysis
    /// window) at which a red phase starts; red onsets repeat every
    /// `cycle_s`.
    pub red_start_s: f64,
    /// Periodogram confidence of the cycle estimate.
    pub snr: f64,
    /// Observations that entered the analysis.
    pub samples: usize,
}

impl LightSchedule {
    /// Red-onset phase within the cycle, `[0, cycle_s)`.
    pub fn red_start_mod_cycle(&self) -> f64 {
        self.red_start_s.rem_euclid(self.cycle_s)
    }

    /// True when an absolute time falls in the red phase of this estimate.
    ///
    /// Defined as `wait_for_green(t) > 0` so the two can never disagree:
    /// a `t` landing exactly on the red→green change instant is green
    /// (zero wait, not red), and exactly on the green→red instant is red.
    pub fn is_red_at(&self, t: Timestamp) -> bool {
        self.wait_for_green(t) > 0.0
    }

    /// Seconds from `t` until the estimated next green; 0 when green.
    ///
    /// Phase boundaries: the red interval is half-open, `[red_start,
    /// red_start + red_s)` modulo the cycle. At `t` exactly on the
    /// red→green change instant the light has already turned, so the wait
    /// is 0; at `t` exactly on the red onset the full red remains.
    pub fn wait_for_green(&self, t: Timestamp) -> f64 {
        let pos = (t.0 as f64 - self.red_start_s).rem_euclid(self.cycle_s);
        if pos < self.red_s {
            self.red_s - pos
        } else {
            0.0
        }
    }
}

/// Why identification failed for a light — the one error type every stage
/// funnels into ([`CycleError`], [`RedError`], [`ChangePointError`] and
/// [`ConfigError`] all convert via `From`).
#[derive(Debug, Clone, PartialEq)]
pub enum IdentifyError {
    /// No observations in the analysis window.
    NoData,
    /// The configuration itself was degenerate.
    Config(ConfigError),
    /// Cycle-length identification failed (even with enhancement).
    Cycle(CycleError),
    /// Red-duration identification failed.
    Red(RedError),
    /// Change-point identification failed.
    ChangePoint(ChangePointError),
}

impl std::fmt::Display for IdentifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdentifyError::NoData => write!(f, "no observations in window"),
            IdentifyError::Config(e) => write!(f, "config: {e}"),
            IdentifyError::Cycle(e) => write!(f, "cycle: {e}"),
            IdentifyError::Red(e) => write!(f, "red duration: {e}"),
            IdentifyError::ChangePoint(e) => write!(f, "change point: {e}"),
        }
    }
}

impl std::error::Error for IdentifyError {}

impl From<ConfigError> for IdentifyError {
    fn from(e: ConfigError) -> Self {
        IdentifyError::Config(e)
    }
}

impl From<CycleError> for IdentifyError {
    fn from(e: CycleError) -> Self {
        IdentifyError::Cycle(e)
    }
}

impl From<RedError> for IdentifyError {
    fn from(e: RedError) -> Self {
        IdentifyError::Red(e)
    }
}

impl From<ChangePointError> for IdentifyError {
    fn from(e: ChangePointError) -> Self {
        IdentifyError::ChangePoint(e)
    }
}

/// Typical consecutive-update interval of the window's observations,
/// falling back to the paper's fleet-wide 20.14 s when no usable pairs
/// exist.
///
/// A taxi that leaves the approach and returns twenty minutes later also
/// produces a "consecutive" pair, so deltas are capped at a few report
/// periods and summarised by the median — the quantity that matters is the
/// device reporting period, not the revisit pattern.
pub fn mean_sample_interval(obs: &[LightObs]) -> f64 {
    use std::collections::HashMap;
    let mut last: HashMap<u32, Timestamp> = HashMap::new();
    let mut deltas: Vec<f64> = Vec::new();
    for o in obs {
        if let Some(prev) = last.insert(o.taxi.0, o.time) {
            let d = o.time.delta(prev);
            if d > 0 && d <= 180 {
                deltas.push(d as f64);
            }
        }
    }
    taxilight_signal::stats::median(&deltas).unwrap_or(20.14)
}

/// Pools the whole intersection's observations for the enhancement path:
/// same-axis approaches (which share this light's phase plan) pool
/// directly with the primary; perpendicular approaches form the
/// to-be-mirrored pool of the paper's Eq. (3). Returns `(primary,
/// perpendicular)` as `(seconds since t0, speed)` samples.
/// `(t, speed)` sample series.
type Samples = Vec<(f64, f64)>;

#[allow(clippy::too_many_arguments)]
fn intersection_pools_into(
    parts: &PartitionedTraces,
    net: &RoadNetwork,
    light: LightId,
    t0: Timestamp,
    t1: Timestamp,
    influence_radius_m: f64,
    primary: &mut Samples,
    perpendicular: &mut Samples,
) {
    primary.clear();
    perpendicular.clear();
    let Some(this) = net.light(light) else {
        return;
    };
    let intersection = net.intersection(this.intersection);
    for l in &intersection.lights {
        let d = heading_difference(l.heading_deg, this.heading_deg);
        let pool = if (45.0..=135.0).contains(&d) { &mut *perpendicular } else { &mut *primary };
        pool.extend(
            parts
                .window(l.id, t0, t1)
                .iter()
                .filter(|o| o.dist_to_stop_m <= influence_radius_m)
                .map(|o| (o.time.delta(t0) as f64, o.speed_kmh)),
        );
    }
}

/// Identifies the schedule of one light at evaluation instant `at`,
/// analysing the window `[at − cfg.window_s, at)` — shared by the engine
/// and the consensus pass. The workspace supplies every scratch buffer and
/// the FFT plan cache — one per worker thread, reused across lights.
///
/// The 0.2-era free-function entry points (`identify_light`,
/// `identify_light_with_cycle`, `identify_all`) were removed in 0.3 per
/// their published deprecation schedule; use [`crate::engine::Identifier`].
pub(crate) fn identify_light_impl(
    parts: &PartitionedTraces,
    net: &RoadNetwork,
    light: LightId,
    at: Timestamp,
    cfg: &IdentifyConfig,
    ws: &mut IdentifyWorkspace,
) -> Result<LightSchedule, IdentifyError> {
    let t0 = at.offset(-(cfg.window_s as i64));
    let obs = parts.window(light, t0, at);
    if obs.is_empty() {
        return Err(IdentifyError::NoData);
    }
    let _light_span = span!("light.identify", light = light.0, obs = obs.len());
    let plan_before = ws.plan_stats();

    // Stage 1: cycle length, enhanced when sparse. `ws.speed` doubles as
    // the in-radius sample series and its length as the sparsity count.
    let stage_start = Instant::now();
    let stage_span = span!("stage.cycle", light = light.0);
    ws.speed.clear();
    ws.speed.extend(
        obs.iter()
            .filter(|o| o.dist_to_stop_m <= cfg.influence_radius_m)
            .map(|o| (o.time.delta(t0) as f64, o.speed_kmh)),
    );
    let near = ws.speed.len();
    let window_len = at.delta(t0) as usize;
    let solo = {
        let speed = std::mem::take(&mut ws.speed);
        let r = ws.cycle_from_samples(&speed, window_len, cfg);
        ws.speed = speed;
        r
    };
    let cycle_est = if near < cfg.enhance_below_samples || solo.is_err() {
        let _enhance_span = span!("stage.enhance", light = light.0, near = near);
        intersection_pools_into(
            parts,
            net,
            light,
            t0,
            at,
            cfg.influence_radius_m,
            &mut ws.pool_primary,
            &mut ws.pool_perpendicular,
        );
        ws.mirror_enhance_pools();
        // Prefer the pooled estimate — four approaches' worth of data —
        // and fall back to the solo result when pooling fails outright.
        let merged = std::mem::take(&mut ws.enhanced);
        let pooled = ws.cycle_from_samples(&merged, window_len, cfg);
        ws.enhanced = merged;
        pooled.or(solo)
    } else {
        solo
    };
    drop(stage_span);
    ws.timings.add_cycle(stage_start.elapsed());
    drain_kernel_time(ws);
    let cycle_est = cycle_est.map_err(IdentifyError::Cycle)?;
    let result = finish_identification(light, obs, t0, cycle_est.cycle_s, cycle_est.snr, cfg, ws);
    event!(
        "light.done",
        light = light.0,
        ok = result.is_ok(),
        cycle_s = cycle_est.cycle_s,
        snr = cycle_est.snr,
        plan_hits = ws.plan_stats().hits() - plan_before.hits(),
        plan_misses = ws.plan_stats().misses() - plan_before.misses()
    );
    result
}

/// Identifies a light's red duration and change point with the cycle
/// length *given* — used when the cycle is known from elsewhere (the
/// intersection consensus, or an external source such as a monitoring
/// history).
pub(crate) fn identify_light_with_cycle_impl(
    parts: &PartitionedTraces,
    light: LightId,
    at: Timestamp,
    cfg: &IdentifyConfig,
    cycle_s: f64,
    ws: &mut IdentifyWorkspace,
) -> Result<LightSchedule, IdentifyError> {
    let t0 = at.offset(-(cfg.window_s as i64));
    let obs = parts.window(light, t0, at);
    if obs.is_empty() {
        return Err(IdentifyError::NoData);
    }
    finish_identification(light, obs, t0, cycle_s, 0.0, cfg, ws)
}

/// Stages 2–3 shared by [`identify_light_impl`] and
/// [`identify_light_with_cycle_impl`].
fn finish_identification(
    light: LightId,
    obs: &[LightObs],
    t0: Timestamp,
    cycle_s: f64,
    snr: f64,
    cfg: &IdentifyConfig,
    ws: &mut IdentifyWorkspace,
) -> Result<LightSchedule, IdentifyError> {
    // Stage 2: red duration from stop statistics. Waits in deep queues can
    // exceed the red itself (discharge delay), so the estimate is clamped
    // strictly inside the cycle.
    let stage_start = Instant::now();
    let stage_span = span!("stage.red", light = light.0);
    ws.stops.clear();
    ws.stops.extend(
        extract_stops(obs, cfg.stationary_threshold_m)
            .into_iter()
            // "The longest stop duration *before a red light*": only stops
            // in the queueing zone count; curbside idles further up the
            // approach are exactly the error class the paper filters out.
            .filter(|s| s.dist_to_stop_m <= cfg.influence_radius_m),
    );
    let interval = mean_sample_interval(obs);
    let red_result = red_duration(&ws.stops, cycle_s, interval);
    drop(stage_span);
    ws.timings.add_red(stage_start.elapsed());
    let red_est = red_result.map_err(IdentifyError::Red)?;
    let red_s = red_est.red_s.min(cycle_s - 1.0).max(1.0);

    // Stage 3: change point. Primary: the queue-dissolution estimator —
    // every stop ends when the light turns green, so the per-stop
    // green-onset estimates cluster sharply at the change (an extension of
    // the paper's sliding-window minimum; ablated in EXPERIMENTS.md).
    // Fallback: the paper's superposition + sliding-window minimum, fold
    // anchored at the window start.
    let stage_start = Instant::now();
    let stage_span = span!("stage.change", light = light.0);
    ws.onsets.clear();
    ws.onsets.extend(
        ws.stops
            .iter()
            .filter(|s| !s.passenger_changed && s.duration_s <= cycle_s)
            .map(|s| s.green_onset_estimate_s() - t0.0 as f64),
    );
    ws.speed.clear();
    ws.speed.extend(
        obs.iter()
            .filter(|o| o.dist_to_stop_m <= cfg.influence_radius_m)
            .map(|o| (o.time.delta(t0) as f64, o.speed_kmh)),
    );
    // Two independent red-onset estimates are fused:
    //  (a) the paper's sliding-window minimum over the superposed cycle
    //      (edge-refined) — tight but biased late by queue formation;
    //  (b) the stop-dissolution estimate: the circular mode of the
    //      per-stop green-onset estimates minus the red duration —
    //      unbiased but inheriting the red-duration spread.
    // Their circular average halves both defects. With too few stops for
    // (b), (a) stands alone.
    let window_result = {
        let speed = std::mem::take(&mut ws.speed);
        let r = ws.change_point(&speed, cycle_s, red_s);
        ws.speed = speed;
        r
    };
    let window_onset = match window_result {
        Ok(est) => est.red_start_s,
        Err(e) => {
            drop(stage_span);
            ws.timings.add_change(stage_start.elapsed());
            drain_kernel_time(ws);
            return Err(IdentifyError::ChangePoint(e));
        }
    };
    let green_onset = {
        let onsets = std::mem::take(&mut ws.onsets);
        let r = ws.green_onset_from_stops(&onsets, cycle_s, 8);
        ws.onsets = onsets;
        r
    };
    let red_start_rel = match green_onset {
        Some(green) => {
            let stop_onset = (green - red_s).rem_euclid(cycle_s);
            let mut delta = (stop_onset - window_onset).rem_euclid(cycle_s);
            if delta >= cycle_s / 2.0 {
                delta -= cycle_s;
            }
            (window_onset + delta / 2.0).rem_euclid(cycle_s)
        }
        None => window_onset,
    };
    drop(stage_span);
    ws.timings.add_change(stage_start.elapsed());
    drain_kernel_time(ws);

    Ok(LightSchedule {
        light,
        cycle_s,
        red_s,
        green_s: cycle_s - red_s,
        red_start_s: t0.0 as f64 + red_start_rel,
        snr,
        samples: obs.len(),
    })
}

/// Sequential, consensus-free sweep over every light with data — the
/// reference the engine-equivalence tests compare the sharded engine to.
pub(crate) fn identify_all_seq(
    parts: &PartitionedTraces,
    net: &RoadNetwork,
    at: Timestamp,
    cfg: &IdentifyConfig,
) -> Vec<(LightId, Result<LightSchedule, IdentifyError>)> {
    let mut ws = IdentifyWorkspace::new();
    parts
        .lights_with_data()
        .into_iter()
        .map(|light| (light, identify_light_impl(parts, net, light, at, cfg, &mut ws)))
        .collect()
}

/// The consensus pass: every light at one crossroad shares the cycle
/// length (paper Sec. V-B — the very fact the enhancement builds on), so
/// when the majority of an intersection's approaches agree and one
/// deviates, the deviator is re-identified with the period band pinned to
/// the consensus neighbourhood.
pub(crate) fn reconcile_intersections(
    results: &mut [(LightId, Result<LightSchedule, IdentifyError>)],
    parts: &PartitionedTraces,
    net: &RoadNetwork,
    at: Timestamp,
    cfg: &IdentifyConfig,
    ws: &mut IdentifyWorkspace,
) {
    use std::collections::HashMap;
    let mut index: HashMap<u32, usize> = HashMap::new();
    for (k, (light, _)) in results.iter().enumerate() {
        index.insert(light.0, k);
    }

    for intersection in net.intersections() {
        // Collect this intersection's successful cycle estimates.
        let mut cycles: Vec<f64> = intersection
            .lights
            .iter()
            .filter_map(|l| index.get(&l.id.0))
            .filter_map(|&k| results[k].1.as_ref().ok().map(|e| e.cycle_s))
            .collect();
        if cycles.len() < 2 {
            continue;
        }
        cycles.sort_by(f64::total_cmp);
        let consensus = cycles[(cycles.len() - 1) / 2];
        // Require an actual majority agreeing within 10 % of the median.
        let agreeing = cycles.iter().filter(|&&c| (c - consensus).abs() <= 0.1 * consensus).count();
        if agreeing * 2 <= cycles.len() {
            continue;
        }
        let pinned_band = taxilight_signal::periodogram::PeriodBand::new(
            (consensus * 0.9).max(5.0),
            consensus * 1.1 + 1.0,
        );
        for l in &intersection.lights {
            let Some(&k) = index.get(&l.id.0) else { continue };
            let deviates = match &results[k].1 {
                Ok(e) => (e.cycle_s - consensus).abs() > 0.1 * consensus,
                Err(_) => true,
            };
            if !deviates {
                continue;
            }
            let pinned_cfg = IdentifyConfig { band: pinned_band, ..cfg.clone() };
            let redone = identify_light_impl(parts, net, l.id, at, &pinned_cfg, ws)
                // The shared-cycle fact is as solid as facts get at a
                // crossroad; when even the pinned band cannot re-identify
                // this approach, adopt the consensus cycle and derive red
                // and phase from it.
                .or_else(|_| identify_light_with_cycle_impl(parts, l.id, at, cfg, consensus, ws));
            if redone.is_ok() {
                results[k].1 = redone;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Identifier, IdentifyRequest};
    use crate::evaluate::{compare, ScheduleTruth};
    use crate::preprocess::Preprocessor;
    use taxilight_roadnet::generators::{grid_city, GridConfig};
    use taxilight_sim::lights::{IntersectionPlan, PhasePlan, SignalMap};
    use taxilight_sim::sim::{SimConfig, Simulator};

    /// End-to-end fixture: simulate a small signalized city, preprocess,
    /// and return everything needed to identify lights.
    fn simulated_world(
        plan: PhasePlan,
        taxis: usize,
        duration_s: u64,
    ) -> (taxilight_roadnet::generators::GeneratedCity, SignalMap, PartitionedTraces, Timestamp)
    {
        let city =
            grid_city(&GridConfig { rows: 3, cols: 3, spacing_m: 600.0, ..GridConfig::default() });
        let mut signals = SignalMap::new();
        for &ix in &city.intersections {
            signals.install_intersection(&city.net, ix, IntersectionPlan { ns: plan });
        }
        let start = Timestamp::civil(2014, 12, 5, 14, 0, 0);
        let cfg = SimConfig {
            taxi_count: taxis,
            start,
            seed: 42,
            street_hail_prob_per_s: 2.0e-4,
            hourly_activity: [1.0; 24],
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&city.net, &signals, cfg);
        sim.run(duration_s);
        let (mut log, _) = sim.into_log();
        let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
        let (parts, _) = pre.preprocess(&mut log);
        (city, signals, parts, start.offset(duration_s as i64))
    }

    #[test]
    fn end_to_end_identifies_simulated_light() {
        let plan = PhasePlan::new(100, 45, 10);
        let (city, signals, parts, at) = simulated_world(plan, 120, 3600);
        let engine = Identifier::with_defaults(&city.net);
        let results = engine.run(&parts, &IdentifyRequest::all(at)).results;
        assert!(!results.is_empty());

        let mut ok = 0;
        let mut cycle_hits = 0;
        for (light, result) in &results {
            let Ok(est) = result else { continue };
            ok += 1;
            let truth_plan = signals.plan(*light, at);
            let truth = ScheduleTruth {
                cycle_s: truth_plan.cycle_s as f64,
                red_s: truth_plan.red_s as f64,
                red_start_mod_cycle_s: truth_plan.offset_s as f64,
            };
            let errors = compare(est, &truth);
            if errors.cycle_err_s < 8.0 {
                cycle_hits += 1;
            }
        }
        assert!(ok >= 2, "at least a couple of lights should be identifiable, got {ok}");
        assert!(
            cycle_hits * 2 >= ok,
            "at least half the identified cycles should be near 100 s ({cycle_hits}/{ok})"
        );
    }

    #[test]
    fn end_to_end_red_and_change_within_band() {
        // Fig. 14's framing is statistical: the estimator is "either very
        // accurate, or has notable errors", so we require the *median*
        // confident light to be accurate rather than every light.
        let plan = PhasePlan::new(90, 40, 25);
        let (city, signals, parts, at) = simulated_world(plan, 150, 5400);
        let engine = Identifier::with_defaults(&city.net);
        let results = engine.run(&parts, &IdentifyRequest::all(at)).results;

        let mut cycle_errs = Vec::new();
        let mut red_errs = Vec::new();
        let mut change_errs = Vec::new();
        for (light, result) in &results {
            let Ok(est) = result else { continue };
            if est.snr < 2.0 {
                continue;
            }
            let truth_plan = signals.plan(*light, at);
            let truth = ScheduleTruth {
                cycle_s: truth_plan.cycle_s as f64,
                red_s: truth_plan.red_s as f64,
                red_start_mod_cycle_s: truth_plan.offset_s as f64,
            };
            let errors = compare(est, &truth);
            cycle_errs.push(errors.cycle_err_s);
            red_errs.push(errors.red_err_s);
            change_errs.push(errors.change_err_s);
        }
        assert!(cycle_errs.len() >= 3, "need several confident lights, got {}", cycle_errs.len());
        // Lower median: with only a handful of lights and the estimator's
        // bimodal error profile (near-exact or grossly wrong), the lower
        // median asks "are at least half the confident lights accurate".
        let median = |xs: &mut Vec<f64>| {
            xs.sort_by(f64::total_cmp);
            xs[(xs.len() - 1) / 2]
        };
        assert!(median(&mut cycle_errs) < 8.0, "median cycle err {cycle_errs:?}");
        assert!(median(&mut red_errs) < 25.0, "median red err {red_errs:?}");
        assert!(median(&mut change_errs) < 30.0, "median change err {change_errs:?}");
    }

    #[test]
    fn no_data_light_reports_no_data() {
        let plan = PhasePlan::new(100, 45, 0);
        let (city, _signals, parts, at) = simulated_world(plan, 5, 300);
        // A light id beyond any data.
        let empty_light =
            city.net.lights().iter().map(|l| l.id).find(|l| parts.observations(*l).is_empty());
        if let Some(light) = empty_light {
            let engine = Identifier::with_defaults(&city.net);
            let err =
                engine.run(&parts, &IdentifyRequest::one(at, light)).into_single().unwrap_err();
            assert_eq!(err, IdentifyError::NoData);
        }
    }

    #[test]
    fn schedule_convenience_methods() {
        let est = LightSchedule {
            light: LightId(0),
            cycle_s: 100.0,
            red_s: 40.0,
            green_s: 60.0,
            red_start_s: 1000.0,
            snr: 3.0,
            samples: 50,
        };
        assert_eq!(est.red_start_mod_cycle(), 0.0);
        assert!(est.is_red_at(Timestamp(1000)));
        assert!(est.is_red_at(Timestamp(1039)));
        assert!(!est.is_red_at(Timestamp(1040)));
        assert!(est.is_red_at(Timestamp(1100)));
        assert_eq!(est.wait_for_green(Timestamp(1000)), 40.0);
        assert_eq!(est.wait_for_green(Timestamp(1030)), 10.0);
        assert_eq!(est.wait_for_green(Timestamp(1050)), 0.0);
    }

    #[test]
    fn wait_for_green_boundary_instants() {
        let est = LightSchedule {
            light: LightId(0),
            cycle_s: 100.0,
            red_s: 40.0,
            green_s: 60.0,
            red_start_s: 1000.0,
            snr: 3.0,
            samples: 50,
        };
        // Exactly on the red→green change instant: already green.
        assert_eq!(est.wait_for_green(Timestamp(1040)), 0.0);
        assert!(!est.is_red_at(Timestamp(1040)));
        // One cycle later, same boundary.
        assert_eq!(est.wait_for_green(Timestamp(1140)), 0.0);
        assert!(!est.is_red_at(Timestamp(1140)));
        // Exactly on the red onset: the full red remains.
        assert_eq!(est.wait_for_green(Timestamp(1100)), 40.0);
        assert!(est.is_red_at(Timestamp(1100)));
        // is_red_at and wait_for_green agree everywhere by construction.
        for t in 900..1300 {
            assert_eq!(est.is_red_at(Timestamp(t)), est.wait_for_green(Timestamp(t)) > 0.0);
        }
        // A fractional red onset keeps the half-open convention: the
        // change instant at 1010.5 + 40 = 1050.5 means t = 1050 is still
        // red with half a second to wait, t = 1051 is green.
        let frac = LightSchedule { red_start_s: 1010.5, ..est };
        assert!(frac.is_red_at(Timestamp(1050)));
        assert!((frac.wait_for_green(Timestamp(1050)) - 0.5).abs() < 1e-9);
        assert!(!frac.is_red_at(Timestamp(1051)));
    }

    #[test]
    fn mean_interval_computation() {
        use crate::cycle::testutil::planted_obs;
        let obs = planted_obs(100, 40, 0, 1000, 20.0, 3);
        let m = mean_sample_interval(&obs);
        // planted_obs cycles taxi ids mod 40, so same-taxi gaps ≈ 40 × mean
        // gap; we mostly validate it is positive and finite here.
        assert!(m > 0.0 && m.is_finite());
        assert_eq!(mean_sample_interval(&[]), 20.14);
    }

    #[test]
    fn error_display() {
        assert!(IdentifyError::NoData.to_string().contains("no observations"));
        let e = IdentifyError::Cycle(CycleError::NoPeriodicity);
        assert!(e.to_string().contains("cycle"));
    }
}
