//! Evaluation metrics: truth-vs-identified errors for the paper's
//! Figs. 13–14.
//!
//! The ground truth for one light at one instant is a `(cycle, red,
//! red-onset phase)` triple — in the paper it came from standing at the
//! intersection with a stopwatch; here the simulator's
//! `SignalMap`/`PhasePlan` provides it (converted by the caller, keeping
//! this crate free of a simulator dependency).

use crate::pipeline::LightSchedule;

/// Ground-truth schedule of one light at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleTruth {
    /// Cycle length, seconds.
    pub cycle_s: f64,
    /// Red duration, seconds.
    pub red_s: f64,
    /// Red-onset phase: red starts at absolute times
    /// `t ≡ red_start_mod_cycle_s (mod cycle_s)`.
    pub red_start_mod_cycle_s: f64,
}

/// Per-parameter absolute errors (Fig. 14's three CDFs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleErrors {
    /// `|estimated − true|` cycle length, seconds.
    pub cycle_err_s: f64,
    /// `|estimated − true|` red duration, seconds.
    pub red_err_s: f64,
    /// Circular distance between estimated and true red onset, seconds.
    pub change_err_s: f64,
}

/// Circular distance between two phases on a cycle of length `cycle_s`.
///
/// # Panics
/// Panics when `cycle_s` is not positive.
pub fn circular_error_s(a_s: f64, b_s: f64, cycle_s: f64) -> f64 {
    assert!(cycle_s > 0.0, "cycle must be positive");
    let d = (a_s - b_s).rem_euclid(cycle_s);
    d.min(cycle_s - d)
}

/// Compares an estimate against truth. The change error is measured on the
/// *true* cycle so a wrong cycle length does not masquerade as a phase
/// win.
pub fn compare(est: &LightSchedule, truth: &ScheduleTruth) -> ScheduleErrors {
    ScheduleErrors {
        cycle_err_s: (est.cycle_s - truth.cycle_s).abs(),
        red_err_s: (est.red_s - truth.red_s).abs(),
        change_err_s: circular_error_s(est.red_start_s, truth.red_start_mod_cycle_s, truth.cycle_s),
    }
}

/// Red-duration error expressed in sample-interval bins — the unit the
/// paper reports ("the error ... is smaller than 2×(mean sample interval)",
/// Fig. 13). With a 20 s feed, a 30 s red error is 1.5 bins.
///
/// # Panics
/// Panics when `mean_interval_s` is not positive.
pub fn red_bin_error(red_err_s: f64, mean_interval_s: f64) -> f64 {
    assert!(mean_interval_s > 0.0, "mean interval must be positive");
    red_err_s.abs() / mean_interval_s
}

/// Order statistics of one error vector — the numbers an accuracy gate
/// compares against its tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Median (0 when empty). Even counts average the middle pair.
    pub median: f64,
    /// 90th percentile, nearest-rank (0 when empty).
    pub p90: f64,
    /// Maximum (0 when empty).
    pub max: f64,
}

impl ErrorSummary {
    /// Summarises `errs`. NaNs are rejected by assertion — an error metric
    /// that produces NaN is a bug upstream, not a statistic.
    ///
    /// # Panics
    /// Panics when `errs` contains a NaN.
    pub fn of(errs: &[f64]) -> ErrorSummary {
        assert!(errs.iter().all(|e| !e.is_nan()), "error vector contains NaN");
        if errs.is_empty() {
            return ErrorSummary { count: 0, mean: 0.0, median: 0.0, p90: 0.0, max: 0.0 };
        }
        let mut sorted = errs.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let median =
            if n % 2 == 1 { sorted[n / 2] } else { (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0 };
        let p90 = sorted[(((n as f64) * 0.9).ceil() as usize).clamp(1, n) - 1];
        ErrorSummary {
            count: n,
            mean: sorted.iter().sum::<f64>() / n as f64,
            median,
            p90,
            max: sorted[n - 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxilight_roadnet::graph::LightId;

    fn est(cycle: f64, red: f64, start: f64) -> LightSchedule {
        LightSchedule {
            light: LightId(0),
            cycle_s: cycle,
            red_s: red,
            green_s: cycle - red,
            red_start_s: start,
            snr: 5.0,
            samples: 100,
        }
    }

    #[test]
    fn circular_error_basics() {
        assert_eq!(circular_error_s(10.0, 10.0, 100.0), 0.0);
        assert_eq!(circular_error_s(10.0, 20.0, 100.0), 10.0);
        assert_eq!(circular_error_s(95.0, 5.0, 100.0), 10.0);
        assert_eq!(circular_error_s(5.0, 95.0, 100.0), 10.0);
        assert_eq!(circular_error_s(0.0, 50.0, 100.0), 50.0);
    }

    #[test]
    #[should_panic(expected = "cycle must be positive")]
    fn circular_error_rejects_zero_cycle() {
        circular_error_s(1.0, 2.0, 0.0);
    }

    #[test]
    fn compare_reports_componentwise_errors() {
        let truth = ScheduleTruth { cycle_s: 98.0, red_s: 39.0, red_start_mod_cycle_s: 41.0 };
        let errors = compare(&est(97.3, 42.0, 44.0), &truth);
        assert!((errors.cycle_err_s - 0.7).abs() < 1e-9);
        assert!((errors.red_err_s - 3.0).abs() < 1e-9);
        assert!((errors.change_err_s - 3.0).abs() < 1e-9);
    }

    #[test]
    fn change_error_wraps_at_cycle_boundary() {
        let truth = ScheduleTruth { cycle_s: 100.0, red_s: 40.0, red_start_mod_cycle_s: 2.0 };
        let errors = compare(&est(100.0, 40.0, 98.0), &truth);
        assert!((errors.change_err_s - 4.0).abs() < 1e-9);
    }

    #[test]
    fn red_bin_error_scales_by_interval() {
        assert!((red_bin_error(30.0, 20.0) - 1.5).abs() < 1e-12);
        assert!((red_bin_error(-30.0, 20.0) - 1.5).abs() < 1e-12);
        assert_eq!(red_bin_error(0.0, 15.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "mean interval must be positive")]
    fn red_bin_error_rejects_zero_interval() {
        red_bin_error(1.0, 0.0);
    }

    #[test]
    fn error_summary_order_statistics() {
        let s = ErrorSummary::of(&[5.0, 1.0, 3.0]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p90, 5.0);
        assert_eq!(s.max, 5.0);
        // Even count: median averages the middle pair.
        let s = ErrorSummary::of(&[4.0, 1.0, 2.0, 3.0]);
        assert!((s.median - 2.5).abs() < 1e-12);
        // Empty: all zeros, no panic.
        let s = ErrorSummary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0.0);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn circular_error_symmetric_and_bounded(a in 0.0f64..500.0, b in 0.0f64..500.0,
                                                    cycle in 1.0f64..300.0) {
                let d1 = circular_error_s(a, b, cycle);
                let d2 = circular_error_s(b, a, cycle);
                prop_assert!((d1 - d2).abs() < 1e-9);
                prop_assert!(d1 >= 0.0 && d1 <= cycle / 2.0 + 1e-9);
            }

            #[test]
            fn shifting_both_by_cycle_is_invariant(a in 0.0f64..100.0, b in 0.0f64..100.0,
                                                   k in 1u32..5) {
                let cycle = 100.0;
                let d1 = circular_error_s(a, b, cycle);
                let d2 = circular_error_s(a + k as f64 * cycle, b, cycle);
                prop_assert!((d1 - d2).abs() < 1e-9);
            }

            #[test]
            fn wraparound_near_cycle_boundary(eps in 0.0f64..10.0, cycle in 30.0f64..300.0) {
                // A phase just before the boundary and one just after it are
                // 2·eps apart, never cycle − 2·eps.
                let d = circular_error_s(cycle - eps, eps, cycle);
                prop_assert!((d - (2.0 * eps).min(cycle - 2.0 * eps)).abs() < 1e-9);
            }

            #[test]
            fn antiphase_is_the_maximum(a in 0.0f64..400.0, cycle in 10.0f64..300.0,
                                        delta in 0.0f64..1.0) {
                // cycle/2 apart is the farthest two phases can be…
                let at_antiphase = circular_error_s(a, a + cycle / 2.0, cycle);
                prop_assert!((at_antiphase - cycle / 2.0).abs() < 1e-9);
                // …and moving off antiphase by d shrinks the distance by d.
                let d = delta * cycle / 2.0;
                let off = circular_error_s(a, a + cycle / 2.0 + d, cycle);
                prop_assert!((off - (cycle / 2.0 - d)).abs() < 1e-6);
            }

            #[test]
            fn triangle_inequality_on_the_circle(a in 0.0f64..300.0, b in 0.0f64..300.0,
                                                 c in 0.0f64..300.0) {
                let cycle = 120.0;
                let ab = circular_error_s(a, b, cycle);
                let bc = circular_error_s(b, c, cycle);
                let ac = circular_error_s(a, c, cycle);
                prop_assert!(ac <= ab + bc + 1e-9);
            }

            #[test]
            fn summary_is_ordered_and_bounded(errs in prop::collection::vec(0.0f64..1e6, 1..60)) {
                let s = ErrorSummary::of(&errs);
                prop_assert_eq!(s.count, errs.len());
                prop_assert!(s.median <= s.p90 + 1e-9);
                prop_assert!(s.p90 <= s.max + 1e-9);
                prop_assert!(s.mean <= s.max + 1e-9);
                let lo = errs.iter().copied().fold(f64::INFINITY, f64::min);
                prop_assert!(s.median >= lo - 1e-9 && s.max <= 1e6);
            }
        }
    }
}
