//! Evaluation metrics: truth-vs-identified errors for the paper's
//! Figs. 13–14.
//!
//! The ground truth for one light at one instant is a `(cycle, red,
//! red-onset phase)` triple — in the paper it came from standing at the
//! intersection with a stopwatch; here the simulator's
//! `SignalMap`/`PhasePlan` provides it (converted by the caller, keeping
//! this crate free of a simulator dependency).

use crate::pipeline::LightSchedule;

/// Ground-truth schedule of one light at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleTruth {
    /// Cycle length, seconds.
    pub cycle_s: f64,
    /// Red duration, seconds.
    pub red_s: f64,
    /// Red-onset phase: red starts at absolute times
    /// `t ≡ red_start_mod_cycle_s (mod cycle_s)`.
    pub red_start_mod_cycle_s: f64,
}

/// Per-parameter absolute errors (Fig. 14's three CDFs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleErrors {
    /// `|estimated − true|` cycle length, seconds.
    pub cycle_err_s: f64,
    /// `|estimated − true|` red duration, seconds.
    pub red_err_s: f64,
    /// Circular distance between estimated and true red onset, seconds.
    pub change_err_s: f64,
}

/// Circular distance between two phases on a cycle of length `cycle_s`.
///
/// # Panics
/// Panics when `cycle_s` is not positive.
pub fn circular_error_s(a_s: f64, b_s: f64, cycle_s: f64) -> f64 {
    assert!(cycle_s > 0.0, "cycle must be positive");
    let d = (a_s - b_s).rem_euclid(cycle_s);
    d.min(cycle_s - d)
}

/// Compares an estimate against truth. The change error is measured on the
/// *true* cycle so a wrong cycle length does not masquerade as a phase
/// win.
pub fn compare(est: &LightSchedule, truth: &ScheduleTruth) -> ScheduleErrors {
    ScheduleErrors {
        cycle_err_s: (est.cycle_s - truth.cycle_s).abs(),
        red_err_s: (est.red_s - truth.red_s).abs(),
        change_err_s: circular_error_s(
            est.red_start_s,
            truth.red_start_mod_cycle_s,
            truth.cycle_s,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxilight_roadnet::graph::LightId;

    fn est(cycle: f64, red: f64, start: f64) -> LightSchedule {
        LightSchedule {
            light: LightId(0),
            cycle_s: cycle,
            red_s: red,
            green_s: cycle - red,
            red_start_s: start,
            snr: 5.0,
            samples: 100,
        }
    }

    #[test]
    fn circular_error_basics() {
        assert_eq!(circular_error_s(10.0, 10.0, 100.0), 0.0);
        assert_eq!(circular_error_s(10.0, 20.0, 100.0), 10.0);
        assert_eq!(circular_error_s(95.0, 5.0, 100.0), 10.0);
        assert_eq!(circular_error_s(5.0, 95.0, 100.0), 10.0);
        assert_eq!(circular_error_s(0.0, 50.0, 100.0), 50.0);
    }

    #[test]
    #[should_panic(expected = "cycle must be positive")]
    fn circular_error_rejects_zero_cycle() {
        circular_error_s(1.0, 2.0, 0.0);
    }

    #[test]
    fn compare_reports_componentwise_errors() {
        let truth = ScheduleTruth { cycle_s: 98.0, red_s: 39.0, red_start_mod_cycle_s: 41.0 };
        let errors = compare(&est(97.3, 42.0, 44.0), &truth);
        assert!((errors.cycle_err_s - 0.7).abs() < 1e-9);
        assert!((errors.red_err_s - 3.0).abs() < 1e-9);
        assert!((errors.change_err_s - 3.0).abs() < 1e-9);
    }

    #[test]
    fn change_error_wraps_at_cycle_boundary() {
        let truth = ScheduleTruth { cycle_s: 100.0, red_s: 40.0, red_start_mod_cycle_s: 2.0 };
        let errors = compare(&est(100.0, 40.0, 98.0), &truth);
        assert!((errors.change_err_s - 4.0).abs() < 1e-9);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn circular_error_symmetric_and_bounded(a in 0.0f64..500.0, b in 0.0f64..500.0,
                                                    cycle in 1.0f64..300.0) {
                let d1 = circular_error_s(a, b, cycle);
                let d2 = circular_error_s(b, a, cycle);
                prop_assert!((d1 - d2).abs() < 1e-9);
                prop_assert!(d1 >= 0.0 && d1 <= cycle / 2.0 + 1e-9);
            }

            #[test]
            fn shifting_both_by_cycle_is_invariant(a in 0.0f64..100.0, b in 0.0f64..100.0,
                                                   k in 1u32..5) {
                let cycle = 100.0;
                let d1 = circular_error_s(a, b, cycle);
                let d2 = circular_error_s(a + k as f64 * cycle, b, cycle);
                prop_assert!((d1 - d2).abs() < 1e-9);
            }
        }
    }
}
