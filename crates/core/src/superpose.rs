//! Data superposition (paper Sec. VI-B, Fig. 10).
//!
//! Folding the sparse speed samples of many consecutive cycles into a
//! single cycle (`new index = old index mod cycle length`) accumulates
//! enough samples per within-cycle offset to see the red/green pattern.
//! Superposition preserves relative position within the cycle, so the
//! signal-change time is unchanged.

/// Folds `(t_abs_s, value)` samples into one cycle of length `cycle_s`.
/// The fold anchor is absolute time 0, so a folded coordinate `x`
/// corresponds to absolute times `t ≡ x (mod cycle_s)`. Output is sorted
/// by folded coordinate.
///
/// # Panics
/// Panics when `cycle_s` is not positive.
pub fn superpose(samples: &[(f64, f64)], cycle_s: f64) -> Vec<(f64, f64)> {
    assert!(cycle_s > 0.0, "cycle must be positive");
    let mut folded: Vec<(f64, f64)> =
        samples.iter().map(|&(t, v)| (t.rem_euclid(cycle_s), v)).collect();
    folded.sort_by(|a, b| a.0.total_cmp(&b.0));
    folded
}

/// Bins folded samples into per-second means over `[0, cycle_len)`;
/// seconds with no sample are `None`.
pub fn bin_cycle(folded: &[(f64, f64)], cycle_len: usize) -> Vec<Option<f64>> {
    let mut sums = vec![0.0; cycle_len];
    let mut counts = vec![0u32; cycle_len];
    for &(x, v) in folded {
        let idx = (x as usize).min(cycle_len.saturating_sub(1));
        sums[idx] += v;
        counts[idx] += 1;
    }
    sums.iter().zip(&counts).map(|(&s, &c)| if c > 0 { Some(s / c as f64) } else { None }).collect()
}

/// Fills `None` gaps by circular linear interpolation between the nearest
/// filled neighbours (the series is one period of a cyclic signal).
/// Returns an all-zero series when every slot is empty.
pub fn fill_gaps_circular(binned: &[Option<f64>]) -> Vec<f64> {
    let n = binned.len();
    if n == 0 {
        return Vec::new();
    }
    let filled: Vec<usize> = (0..n).filter(|&i| binned[i].is_some()).collect();
    if filled.is_empty() {
        return vec![0.0; n];
    }
    if filled.len() == 1 {
        let v = binned[filled[0]].unwrap();
        return vec![v; n];
    }
    let mut out = vec![0.0; n];
    for (k, &i) in filled.iter().enumerate() {
        out[i] = binned[i].unwrap();
        // Fill the gap between this filled slot and the next (circularly).
        let j = filled[(k + 1) % filled.len()];
        let gap = if j > i { j - i } else { n - i + j };
        if gap <= 1 {
            continue;
        }
        let (vi, vj) = (binned[i].unwrap(), binned[j].unwrap());
        for step in 1..gap {
            let idx = (i + step) % n;
            let w = step as f64 / gap as f64;
            out[idx] = vi * (1.0 - w) + vj * w;
        }
    }
    out
}

/// Convenience: superpose, bin and gap-fill in one call, producing the
/// 1 Hz cyclic speed profile the change-point detector consumes.
pub fn cycle_profile(samples: &[(f64, f64)], cycle_s: f64) -> Vec<f64> {
    let cycle_len = cycle_s.round().max(1.0) as usize;
    let folded = superpose(samples, cycle_s);
    fill_gaps_circular(&bin_cycle(&folded, cycle_len))
}

/// Epoch-folding contrast: how much of the samples' variance is explained
/// by folding them at `cycle_s` (noise-corrected ANOVA R², clamped to
/// `[0, 1]`).
///
/// Folding at the true period aligns red with red and green with green, so
/// within-bin variance collapses and between-bin variance explains the
/// total; a wrong period mixes phases and explains nothing. The raw R²
/// favours long periods (more bins → each fits noise), so the expected
/// noise contribution `(B−1)·σ̂²_within` is subtracted — the standard
/// ANOVA correction.
///
/// Returns 0 for degenerate inputs (fewer than ~2 samples per bin on
/// average, zero variance).
pub fn fold_contrast(samples: &[(f64, f64)], cycle_s: f64) -> f64 {
    const BINS: usize = 12;
    assert!(cycle_s > 0.0, "cycle must be positive");
    let n = samples.len();
    if n < 2 * BINS {
        return 0.0;
    }
    let mut sums = [0.0f64; BINS];
    let mut sq = [0.0f64; BINS];
    let mut counts = [0usize; BINS];
    for &(t, v) in samples {
        let phase = t.rem_euclid(cycle_s) / cycle_s;
        let b = ((phase * BINS as f64) as usize).min(BINS - 1);
        sums[b] += v;
        sq[b] += v * v;
        counts[b] += 1;
    }
    let total: f64 = sums.iter().sum();
    let mu = total / n as f64;
    let tss: f64 = sq.iter().sum::<f64>() - n as f64 * mu * mu;
    if tss <= 1e-9 {
        return 0.0;
    }
    let mut bss = 0.0;
    let mut occupied = 0usize;
    for b in 0..BINS {
        if counts[b] > 0 {
            let m = sums[b] / counts[b] as f64;
            bss += counts[b] as f64 * (m - mu) * (m - mu);
            occupied += 1;
        }
    }
    let wss = (tss - bss).max(0.0);
    let df_within = n.saturating_sub(occupied).max(1) as f64;
    let noise = (occupied.saturating_sub(1)) as f64 * wss / df_within;
    ((bss - noise) / tss).clamp(0.0, 1.0)
}

impl crate::workspace::IdentifyWorkspace {
    /// Workspace twin of [`cycle_profile`]: fills `self.profile` with the
    /// gap-filled 1 Hz cyclic speed profile, bit-identical to the
    /// allocating chain. The fold sort tags each sample with its original
    /// index so `sort_unstable_by` reproduces the reference's *stable*
    /// order (folded coordinates can tie — e.g. t = 10 and t = 108 both
    /// fold to 10 at cycle 98 — and bin sums depend on summation order).
    ///
    /// # Panics
    /// Panics when `cycle_s` is not positive.
    pub(crate) fn cycle_profile(&mut self, samples: &[(f64, f64)], cycle_s: f64) {
        assert!(cycle_s > 0.0, "cycle must be positive");
        let _span =
            taxilight_obs::span!("superpose.profile", samples = samples.len(), cycle_s = cycle_s);
        let cycle_len = cycle_s.round().max(1.0) as usize;

        // superpose
        self.folded.clear();
        self.folded
            .extend(samples.iter().enumerate().map(|(i, &(t, v))| (t.rem_euclid(cycle_s), v, i)));
        self.folded.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.2.cmp(&b.2)));

        // bin_cycle
        self.sums.clear();
        self.sums.resize(cycle_len, 0.0);
        self.bin_counts.clear();
        self.bin_counts.resize(cycle_len, 0);
        for &(x, v, _) in &self.folded {
            let idx = (x as usize).min(cycle_len.saturating_sub(1));
            self.sums[idx] += v;
            self.bin_counts[idx] += 1;
        }
        self.binned.clear();
        self.binned.extend(self.sums.iter().zip(&self.bin_counts).map(|(&s, &c)| {
            if c > 0 {
                Some(s / c as f64)
            } else {
                None
            }
        }));

        // fill_gaps_circular
        let n = self.binned.len();
        self.profile.clear();
        if n == 0 {
            return;
        }
        self.filled.clear();
        self.filled.extend((0..n).filter(|&i| self.binned[i].is_some()));
        if self.filled.is_empty() {
            self.profile.resize(n, 0.0);
            return;
        }
        if self.filled.len() == 1 {
            let v = self.binned[self.filled[0]].unwrap();
            self.profile.resize(n, v);
            return;
        }
        self.profile.resize(n, 0.0);
        for (k, &i) in self.filled.iter().enumerate() {
            self.profile[i] = self.binned[i].unwrap();
            let j = self.filled[(k + 1) % self.filled.len()];
            let gap = if j > i { j - i } else { n - i + j };
            if gap <= 1 {
                continue;
            }
            let (vi, vj) = (self.binned[i].unwrap(), self.binned[j].unwrap());
            for step in 1..gap {
                let idx = (i + step) % n;
                let w = step as f64 / gap as f64;
                self.profile[idx] = vi * (1.0 - w) + vj * w;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The workspace profile is bit-identical to the allocating chain,
    /// including tied folded coordinates (whose bin summation order the
    /// tagged sort must reproduce) and degenerate inputs.
    #[test]
    fn workspace_profile_matches_allocating_bitwise() {
        let mut ws = crate::workspace::IdentifyWorkspace::new();
        let mut lcg = 9u64;
        let mut next = move || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (lcg >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut cases: Vec<(Vec<(f64, f64)>, f64)> = vec![
            // Exact ties: 10 and 108 both fold to 10 at cycle 98.
            (vec![(10.0, 1.0), (108.0, 2.0), (206.0, 3.0), (150.0, 4.0)], 98.0),
            (vec![], 50.0),
            (vec![(7.2, 33.0)], 60.0),
            (vec![(0.4, 0.1), (0.6, 0.2)], 1.3),
        ];
        for _ in 0..8 {
            let n = (next() * 150.0) as usize;
            let cycle = 10.0 + next() * 200.0;
            let s: Vec<(f64, f64)> = (0..n)
                .map(|_| ((next() * 5000.0).round(), (next() * 60.0 * 8.0).round() / 8.0))
                .collect();
            cases.push((s, cycle));
        }
        for (samples, cycle_s) in &cases {
            let reference = cycle_profile(samples, *cycle_s);
            ws.cycle_profile(samples, *cycle_s);
            assert_eq!(ws.profile.len(), reference.len());
            for (a, b) in ws.profile.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "profile diverged (cycle {cycle_s})");
            }
        }
    }

    #[test]
    fn fold_maps_by_modulo() {
        // Paper Fig. 10: cycle 98; samples from 3 consecutive cycles land
        // at `t mod 98`.
        let samples = vec![(10.0, 1.0), (108.0, 2.0), (206.0, 3.0), (150.0, 4.0)];
        let folded = superpose(&samples, 98.0);
        assert_eq!(folded.len(), 4);
        assert_eq!(folded[0].0, 10.0);
        assert_eq!(folded[1].0, 10.0);
        assert_eq!(folded[2].0, 10.0);
        assert!((folded[3].0 - 52.0).abs() < 1e-12);
        // Values preserved (the three t≡10 samples are 1, 2, 3 in some order).
        let mut vals: Vec<f64> = folded[..3].iter().map(|p| p.1).collect();
        vals.sort_by(f64::total_cmp);
        assert_eq!(vals, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn fold_preserves_relative_index() {
        // A sample `k` seconds after a red onset folds to the same
        // coordinate in every cycle — the property the paper relies on.
        let cycle = 106.0;
        for k in [0.0, 17.0, 63.0, 105.0] {
            let folded = superpose(&[(k, 1.0), (k + cycle, 1.0), (k + 5.0 * cycle, 1.0)], cycle);
            for &(x, _) in &folded {
                assert!((x - k).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "cycle must be positive")]
    fn zero_cycle_rejected() {
        superpose(&[(1.0, 1.0)], 0.0);
    }

    #[test]
    fn bin_cycle_averages_within_seconds() {
        let folded = vec![(2.3, 10.0), (2.9, 20.0), (5.0, 7.0)];
        let binned = bin_cycle(&folded, 8);
        assert_eq!(binned[2], Some(15.0));
        assert_eq!(binned[5], Some(7.0));
        assert_eq!(binned[0], None);
        assert_eq!(binned.len(), 8);
    }

    #[test]
    fn fill_gaps_interpolates_linearly() {
        let binned = vec![Some(0.0), None, None, Some(30.0), None, None];
        let filled = fill_gaps_circular(&binned);
        assert_eq!(filled[0], 0.0);
        assert!((filled[1] - 10.0).abs() < 1e-9);
        assert!((filled[2] - 20.0).abs() < 1e-9);
        assert_eq!(filled[3], 30.0);
        // Circular wrap from index 3 back to 0: 30 → 0 over 3 steps.
        assert!((filled[4] - 20.0).abs() < 1e-9);
        assert!((filled[5] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fill_gaps_degenerate_cases() {
        assert!(fill_gaps_circular(&[]).is_empty());
        assert_eq!(fill_gaps_circular(&[None, None]), vec![0.0, 0.0]);
        assert_eq!(fill_gaps_circular(&[None, Some(5.0), None]), vec![5.0, 5.0, 5.0]);
        assert_eq!(fill_gaps_circular(&[Some(1.0)]), vec![1.0]);
    }

    #[test]
    fn cycle_profile_reconstructs_square_wave() {
        // Red [0, 39): slow; green [39, 98): fast. Sparse samples over 20
        // cycles must reconstruct the pattern after superposition.
        let cycle = 98.0;
        let mut samples = Vec::new();
        let mut t = 0.0;
        let mut k = 0u64;
        while t < 20.0 * cycle {
            let pos = t % cycle;
            let v = if pos < 39.0 { 1.0 } else { 40.0 };
            samples.push((t, v));
            // Irregular ~17 s gaps.
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            t += 12.0 + (k >> 33) as f64 / (1u64 << 31) as f64 * 10.0;
        }
        let profile = cycle_profile(&samples, cycle);
        assert_eq!(profile.len(), 98);
        let red_mean: f64 = profile[5..34].iter().sum::<f64>() / 29.0;
        let green_mean: f64 = profile[45..93].iter().sum::<f64>() / 48.0;
        assert!(red_mean < 10.0, "red region mean {red_mean}");
        assert!(green_mean > 25.0, "green region mean {green_mean}");
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn folded_coordinates_in_range(samples in prop::collection::vec(
                (0.0f64..100_000.0, -10.0f64..60.0), 0..200), cycle in 10.0f64..300.0) {
                for (x, _) in superpose(&samples, cycle) {
                    prop_assert!((0.0..cycle).contains(&x));
                }
            }

            #[test]
            fn fold_conserves_sample_count(samples in prop::collection::vec(
                (0.0f64..10_000.0, 0.0f64..60.0), 0..100)) {
                prop_assert_eq!(superpose(&samples, 98.0).len(), samples.len());
            }

            #[test]
            fn filled_profile_bounded_by_observed_values(
                samples in prop::collection::vec((0.0f64..5_000.0, 0.0f64..50.0), 1..100)
            ) {
                let profile = cycle_profile(&samples, 100.0);
                let lo = samples.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
                let hi = samples.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
                for v in profile {
                    prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
                }
            }

            #[test]
            fn fold_is_idempotent(samples in prop::collection::vec(
                (0.0f64..50_000.0, 0.0f64..60.0), 0..120), cycle in 10.0f64..300.0) {
                // Folded coordinates already lie in [0, cycle), so folding
                // again is the identity — the invariant that lets the
                // pipeline treat folded and unfolded phases uniformly.
                let once = superpose(&samples, cycle);
                let twice = superpose(&once, cycle);
                prop_assert_eq!(&once, &twice);
            }

            #[test]
            fn whole_cycle_shift_leaves_fold_unchanged(samples in prop::collection::vec(
                (0.0f64..5_000.0, 0.0f64..60.0), 0..80), k in 1u32..20) {
                // Sec. VI-B's core claim: superposition preserves relative
                // position within the cycle.
                let cycle = 98.0;
                let shifted: Vec<(f64, f64)> = samples
                    .iter()
                    .map(|&(t, v)| (t + k as f64 * cycle, v))
                    .collect();
                let a = superpose(&samples, cycle);
                let b = superpose(&shifted, cycle);
                prop_assert_eq!(a.len(), b.len());
                for (&(xa, va), &(xb, vb)) in a.iter().zip(&b) {
                    prop_assert!((xa - xb).abs() < 1e-6);
                    prop_assert!((va - vb).abs() < 1e-12);
                }
            }

            #[test]
            fn binning_conserves_mass(samples in prop::collection::vec(
                (0.0f64..3_000.0, 0.0f64..60.0), 0..120)) {
                // Per-bin mean × per-bin count sums back to the total: the
                // fold loses no sample mass. Recover counts by re-binning.
                let cycle_len = 100usize;
                let folded = superpose(&samples, cycle_len as f64);
                let binned = bin_cycle(&folded, cycle_len);
                let mut counts = vec![0u32; cycle_len];
                for &(x, _) in &folded {
                    counts[(x as usize).min(cycle_len - 1)] += 1;
                }
                let mass: f64 = binned
                    .iter()
                    .zip(&counts)
                    .map(|(b, &c)| b.unwrap_or(0.0) * c as f64)
                    .sum();
                let total: f64 = samples.iter().map(|p| p.1).sum();
                prop_assert!((mass - total).abs() < 1e-6 * total.max(1.0));
                // And a bin is empty iff no sample landed in it.
                for (b, &c) in binned.iter().zip(&counts) {
                    prop_assert_eq!(b.is_some(), c > 0);
                }
            }

            #[test]
            fn gap_fill_preserves_observed_bins(samples in prop::collection::vec(
                (0.0f64..2_000.0, 0.0f64..50.0), 1..60)) {
                let cycle_len = 60usize;
                let binned = bin_cycle(&superpose(&samples, cycle_len as f64), cycle_len);
                let filled = fill_gaps_circular(&binned);
                prop_assert_eq!(filled.len(), cycle_len);
                for (f, b) in filled.iter().zip(&binned) {
                    if let Some(v) = b {
                        prop_assert!((f - v).abs() < 1e-12);
                    }
                }
            }

            #[test]
            fn fold_contrast_stays_in_unit_interval(samples in prop::collection::vec(
                (0.0f64..10_000.0, 0.0f64..60.0), 0..150), cycle in 10.0f64..300.0) {
                let r2 = fold_contrast(&samples, cycle);
                prop_assert!((0.0..=1.0).contains(&r2));
            }
        }
    }
}
