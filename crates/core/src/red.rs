//! Red-light duration identification (paper Sec. VI-A, Figs. 8–9).
//!
//! The mean red light (91.7 s in the paper's ground truth) is ~4.5× the
//! mean update interval (20.14 s), so a waiting taxi reports the same
//! position several times; the longest stop before the light approximates
//! the red duration. Two error filters remove non-light stops:
//!
//! 1. stop durations longer than one cycle are dropped;
//! 2. stops whose passenger state changes are dropped (pick-up/drop-off).
//!
//! Residual errors are separated with the **border-interval classifier**:
//! bucket stop durations into mean-sample-interval-wide bins, find the
//! boundary between the dense "valid" prefix and the sparse error tail,
//! and return the record-weighted average of the border interval.

use crate::preprocess::LightObs;
use taxilight_signal::histogram::Histogram;

/// One extracted stop event on a light's approach.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stop {
    /// Corrected stop duration in seconds (see [`extract_stops`]).
    pub duration_s: f64,
    /// Whether the passenger flag changed during the stop (paper filter 2).
    pub passenger_changed: bool,
    /// Distance of the stopped vehicle to the stop line, meters.
    pub dist_to_stop_m: f64,
    /// Absolute time (epoch seconds) of the last stationary fix — the
    /// vehicle started moving within one report period after this.
    pub end_s: f64,
    /// The run's mean internal report gap, seconds.
    pub gap_s: f64,
}

impl Stop {
    /// Best estimate of the absolute instant this vehicle's queue position
    /// dissolved, i.e. the moment the *light* turned green: the last
    /// stationary fix, advanced by half the sampling gap (censoring) and
    /// pulled back by the start-up shockwave delay for its queue depth.
    pub fn green_onset_estimate_s(&self) -> f64 {
        self.end_s + self.gap_s / 2.0 - self.dist_to_stop_m / STARTUP_WAVE_MS
    }
}

/// Extracts stops from one light's time-sorted observations: maximal runs
/// of consecutive same-taxi fixes that stay within
/// `stationary_threshold_m` of the run's first fix.
pub fn extract_stops(obs: &[LightObs], stationary_threshold_m: f64) -> Vec<Stop> {
    // Group per taxi (observations are time-sorted overall, so collect
    // per-taxi sequences first). BTreeMap so the output stop order — and
    // with it any downstream float fold — is identical across runs.
    use std::collections::BTreeMap;
    let mut per_taxi: BTreeMap<u32, Vec<&LightObs>> = BTreeMap::new();
    for o in obs {
        per_taxi.entry(o.taxi.0).or_default().push(o);
    }
    let mut stops = Vec::new();
    for seq in per_taxi.values() {
        let mut run_start: Option<usize> = None;
        for i in 0..seq.len() {
            let anchored = run_start.is_some_and(|s| {
                seq[i].position.distance_m(seq[s].position) <= stationary_threshold_m
            });
            if anchored {
                continue;
            }
            // Close any open run ending at i-1.
            if let Some(s) = run_start {
                if i - s >= 2 {
                    stops.push(make_stop(&seq[s..i]));
                }
            }
            run_start = Some(i);
        }
        if let Some(s) = run_start {
            if seq.len() - s >= 2 {
                stops.push(make_stop(&seq[s..]));
            }
        }
    }
    stops
}

/// Start-up shockwave speed: when the light turns green the "go" wave
/// travels backwards through the queue at roughly this speed, so a vehicle
/// `d` meters from the stop line stands ~`d / WAVE_SPEED` longer than the
/// red itself.
const STARTUP_WAVE_MS: f64 = 6.0;

fn make_stop(run: &[&LightObs]) -> Stop {
    // Two corrections turn the observed fix span into a red-duration
    // sample (both beyond the paper's verbatim algorithm; ablated in
    // EXPERIMENTS.md):
    //
    // * **Censoring**: the vehicle stood for up to one report period
    //   before the first fix and after the last one (expectation: half a
    //   period each side); the run's own mean internal gap estimates the
    //   period, so add one gap.
    // * **Queue shockwave**: a vehicle queued `d` meters from the stop
    //   line keeps standing for `d / wave speed` after the light turns
    //   green; subtract that discharge delay.
    let span = run.last().unwrap().time.delta(run[0].time) as f64;
    let gap = span / (run.len() - 1) as f64;
    let dist = run[0].dist_to_stop_m;
    let discharge_delay = dist / STARTUP_WAVE_MS;
    let passenger_changed = run.windows(2).any(|w| w[0].passenger != w[1].passenger);
    Stop {
        duration_s: (span + gap - discharge_delay).max(1.0),
        passenger_changed,
        dist_to_stop_m: dist,
        end_s: run.last().unwrap().time.0 as f64,
        gap_s: gap,
    }
}

/// A red-duration estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedEstimate {
    /// Estimated red duration, seconds.
    pub red_s: f64,
    /// Index of the border bin in the duration histogram.
    pub border_bin: usize,
    /// Stops that survived the error filters.
    pub stops_used: usize,
}

/// Why red-duration identification failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RedError {
    /// No stops survived the filters.
    NoStops,
    /// The cycle length or mean sample interval was non-positive or
    /// non-finite — a degenerate window upstream, not a data property.
    DegenerateInput {
        /// The offending cycle length, seconds.
        cycle_s: f64,
        /// The offending mean sample interval, seconds.
        mean_interval_s: f64,
    },
}

impl std::fmt::Display for RedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RedError::NoStops => write!(f, "NoStops: no valid stop events on this approach"),
            RedError::DegenerateInput { cycle_s, mean_interval_s } => write!(
                f,
                "DegenerateInput: cycle {cycle_s} s / mean interval {mean_interval_s} s \
                 must be positive and finite"
            ),
        }
    }
}

impl std::error::Error for RedError {}

/// Estimates the red duration from stop events given the (already
/// identified) cycle length and the feed's mean sample interval.
///
/// A non-positive or non-finite `cycle_s` / `mean_interval_s` yields
/// [`RedError::DegenerateInput`] rather than a panic — corrupted feeds
/// must degrade into typed errors, not abort the round.
pub fn red_duration(
    stops: &[Stop],
    cycle_s: f64,
    mean_interval_s: f64,
) -> Result<RedEstimate, RedError> {
    if !(cycle_s > 0.0
        && cycle_s.is_finite()
        && mean_interval_s > 0.0
        && mean_interval_s.is_finite())
    {
        return Err(RedError::DegenerateInput { cycle_s, mean_interval_s });
    }

    // Paper error filters.
    let valid: Vec<f64> = stops
        .iter()
        .filter(|s| !s.passenger_changed)
        .map(|s| s.duration_s)
        .filter(|&d| d > 0.0 && d <= cycle_s)
        .collect();
    if valid.is_empty() {
        return Err(RedError::NoStops);
    }

    // Mean-sample-interval bins over one cycle (Fig. 9).
    let mut hist = Histogram::with_bin_width(0.0, cycle_s + mean_interval_s, mean_interval_s);
    hist.extend(&valid);

    // The valid data forms a dense prefix; errors are sparse on the right.
    // Bins in the contiguous prefix whose count reaches a fraction of the
    // densest bin are "clearly valid"; the bin right after the prefix is
    // the *border interval* — it holds the longest valid stops (just under
    // the red duration) plus at most a few errors.
    let max_count = (0..hist.bins()).map(|i| hist.count(i)).max().unwrap_or(0);
    let threshold = ((max_count as f64) * 0.25).ceil().max(1.0) as u64;
    let mut last_valid = 0usize;
    while last_valid + 1 < hist.bins() && hist.count(last_valid + 1) >= threshold {
        last_valid += 1;
    }
    let border = (last_valid + 1).min(hist.bins() - 1);

    // Weighted average of the border interval, "using the number of
    // records as weight": the mean of the samples inside the border bin.
    // An empty border bin means the red duration coincides with the end of
    // the valid prefix — fall back to the longest clearly-valid stop.
    let (lo, hi) = hist.bin_range(border);
    let border_samples: Vec<f64> = valid.iter().copied().filter(|&d| d >= lo && d < hi).collect();
    let mut red = if border_samples.is_empty() {
        let (plo, phi) = hist.bin_range(last_valid);
        valid.iter().copied().filter(|&d| d >= plo && d < phi).fold(0.0f64, f64::max)
    } else {
        border_samples.iter().sum::<f64>() / border_samples.len() as f64
    };
    if red <= 0.0 {
        // Degenerate histograms (e.g. one lone sample past an empty
        // prefix): the longest surviving stop is the best estimate left.
        red = valid.iter().copied().fold(0.0f64, f64::max);
    }

    Ok(RedEstimate { red_s: red.min(cycle_s), border_bin: border, stops_used: valid.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxilight_trace::record::{PassengerState, TaxiId};
    use taxilight_trace::time::Timestamp;
    use taxilight_trace::GeoPoint;

    fn obs(taxi: u32, t: i64, lat_off: f64, passenger: PassengerState) -> LightObs {
        LightObs {
            taxi: TaxiId(taxi),
            time: Timestamp(t),
            speed_kmh: 0.0,
            position: GeoPoint::new(22.5 + lat_off, 114.0),
            dist_to_stop_m: 20.0,
            passenger,
        }
    }

    #[test]
    fn extracts_simple_stop_run() {
        // Taxi 0 stationary 0–60 s (4 fixes), then moves 300 m away.
        let v = PassengerState::Vacant;
        let records = vec![
            obs(0, 0, 0.0, v),
            obs(0, 20, 0.0, v),
            obs(0, 40, 0.00001, v),
            obs(0, 60, 0.0, v),
            obs(0, 80, 0.003, v), // ≈330 m away — moving again
        ];
        let stops = extract_stops(&records, 15.0);
        assert_eq!(stops.len(), 1);
        // Span 60 s over 4 fixes (gap 20 s) → censoring-corrected 80 s,
        // minus the 20 m queue-position discharge delay (20/6 ≈ 3.3 s).
        assert!(
            (stops[0].duration_s - (80.0 - 20.0 / 6.0)).abs() < 1e-9,
            "duration {}",
            stops[0].duration_s
        );
        assert!(!stops[0].passenger_changed);
    }

    #[test]
    fn single_fix_runs_are_not_stops() {
        let v = PassengerState::Vacant;
        let records = vec![obs(0, 0, 0.0, v), obs(0, 30, 0.01, v), obs(0, 60, 0.02, v)];
        assert!(extract_stops(&records, 15.0).is_empty());
    }

    #[test]
    fn passenger_change_is_flagged() {
        let records = vec![
            obs(0, 0, 0.0, PassengerState::Vacant),
            obs(0, 30, 0.0, PassengerState::Occupied),
            obs(0, 60, 0.0, PassengerState::Occupied),
        ];
        let stops = extract_stops(&records, 15.0);
        assert_eq!(stops.len(), 1);
        assert!(stops[0].passenger_changed);
    }

    #[test]
    fn interleaved_taxis_are_separated() {
        let v = PassengerState::Vacant;
        let records = vec![
            obs(0, 0, 0.0, v),
            obs(1, 5, 0.01, v),
            obs(0, 25, 0.0, v),
            obs(1, 35, 0.01, v),
            obs(0, 50, 0.0, v),
            obs(1, 65, 0.01, v),
        ];
        let stops = extract_stops(&records, 15.0);
        assert_eq!(stops.len(), 2);
        for s in stops {
            // Span 50 s over 3 fixes (gap 25 s) → corrected ≈75 s minus
            // the ~3 s discharge delay.
            assert!((s.duration_s - 72.0).abs() < 16.0, "duration {}", s.duration_s);
        }
    }

    /// Builds a realistic stop-duration population: uniform waits in
    /// `(0, red]` plus a sparse error tail, the Fig. 9 setting.
    fn stop_population(red: f64, cycle: f64, n_valid: usize, errors: &[f64]) -> Vec<Stop> {
        let mut stops = Vec::new();
        for k in 0..n_valid {
            let d = red * (k as f64 + 0.5) / n_valid as f64;
            stops.push(Stop {
                duration_s: d,
                passenger_changed: false,
                dist_to_stop_m: 20.0,
                end_s: 0.0,
                gap_s: 20.0,
            });
        }
        for &d in errors {
            stops.push(Stop {
                duration_s: d,
                passenger_changed: false,
                dist_to_stop_m: 20.0,
                end_s: 0.0,
                gap_s: 20.0,
            });
        }
        let _ = cycle;
        stops
    }

    #[test]
    fn fig9_worked_example() {
        // Paper: cycle 106 s, mean interval 20.14 s, truth red = 63 s, with
        // <10 % errors above the red duration.
        let stops = stop_population(63.0, 106.0, 60, &[80.0, 85.0, 95.0, 101.0]);
        let est = red_duration(&stops, 106.0, 20.14).unwrap();
        assert!(
            (est.red_s - 63.0).abs() < 8.0,
            "estimated red {} (border bin {})",
            est.red_s,
            est.border_bin
        );
        // Border bin covers [60.42, 80.56): index 3.
        assert_eq!(est.border_bin, 3);
    }

    #[test]
    fn filters_drop_over_cycle_and_passenger_stops() {
        let mut stops = stop_population(63.0, 106.0, 40, &[]);
        stops.push(Stop {
            duration_s: 300.0,
            passenger_changed: false,
            dist_to_stop_m: 5.0,
            end_s: 0.0,
            gap_s: 20.0,
        });
        stops.push(Stop {
            duration_s: 62.0,
            passenger_changed: true,
            dist_to_stop_m: 5.0,
            end_s: 0.0,
            gap_s: 20.0,
        });
        let est = red_duration(&stops, 106.0, 20.14).unwrap();
        assert_eq!(est.stops_used, 40, "both polluted stops must be filtered");
        assert!((est.red_s - 63.0).abs() < 10.0);
    }

    #[test]
    fn all_filtered_reports_no_stops() {
        let stops = vec![
            Stop {
                duration_s: 500.0,
                passenger_changed: false,
                dist_to_stop_m: 5.0,
                end_s: 0.0,
                gap_s: 20.0,
            },
            Stop {
                duration_s: 40.0,
                passenger_changed: true,
                dist_to_stop_m: 5.0,
                end_s: 0.0,
                gap_s: 20.0,
            },
        ];
        assert_eq!(red_duration(&stops, 106.0, 20.0), Err(RedError::NoStops));
        assert_eq!(red_duration(&[], 106.0, 20.0), Err(RedError::NoStops));
        assert!(RedError::NoStops.to_string().contains("NoStops"));
    }

    #[test]
    fn short_red_is_found_in_first_bins() {
        // Red 25 s with bins of 20 s: the valid prefix ends at bin 1 and
        // the (error-only or empty) border bin must not drag the estimate
        // toward the lone 70 s outlier.
        let stops = stop_population(25.0, 90.0, 50, &[70.0]);
        let est = red_duration(&stops, 90.0, 20.0).unwrap();
        assert!((est.red_s - 25.0).abs() < 10.0, "red {}", est.red_s);
        assert!(est.border_bin <= 2);
    }

    #[test]
    fn degenerate_inputs_yield_typed_errors() {
        let stops = stop_population(40.0, 90.0, 10, &[]);
        for (cycle, interval) in [
            (0.0, 20.0),
            (-90.0, 20.0),
            (f64::NAN, 20.0),
            (f64::INFINITY, 20.0),
            (90.0, 0.0),
            (90.0, -1.0),
            (90.0, f64::NAN),
        ] {
            let err = red_duration(&stops, cycle, interval).unwrap_err();
            assert!(
                matches!(err, RedError::DegenerateInput { .. }),
                "cycle {cycle}, interval {interval}: {err:?}"
            );
            assert!(err.to_string().contains("DegenerateInput"));
        }
        // Valid inputs with no stops still report NoStops.
        assert_eq!(red_duration(&[], 90.0, 20.0).unwrap_err(), RedError::NoStops);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn estimate_close_to_planted_red(red in 30.0f64..90.0,
                                             extra in 0.0f64..0.3) {
                let cycle = red / 0.45; // red ≈ 45 % of cycle
                let n = 80;
                let n_err = (n as f64 * extra * 0.1) as usize;
                let errors: Vec<f64> = (0..n_err)
                    .map(|k| red + 5.0 + k as f64 * 3.0)
                    .filter(|&d| d < cycle)
                    .collect();
                let stops = stop_population(red, cycle, n, &errors);
                let est = red_duration(&stops, cycle, 20.14).unwrap();
                // Within one bin width of truth.
                prop_assert!((est.red_s - red).abs() < 21.0,
                             "red {} est {}", red, est.red_s);
            }

            #[test]
            fn estimate_never_exceeds_cycle(durations in prop::collection::vec(1.0f64..200.0, 1..50)) {
                let stops: Vec<Stop> = durations.iter().map(|&d| Stop {
                    duration_s: d, passenger_changed: false, dist_to_stop_m: 10.0,
                    end_s: 0.0, gap_s: 20.0,
                }).collect();
                if let Ok(est) = red_duration(&stops, 120.0, 20.0) {
                    prop_assert!(est.red_s <= 120.0);
                    prop_assert!(est.red_s > 0.0);
                }
            }
        }
    }
}
