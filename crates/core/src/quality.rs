//! Per-light data-quality assessment.
//!
//! The paper's feed is "not uniformly distributed for all city regions at
//! all time" — Table II spans a 25× records-per-hour range, and the
//! evaluation's gross-error mode concentrates at starved approaches. This
//! module grades each light's coverage inside an analysis window so a
//! deployment can tell *in advance* which schedules are identifiable,
//! which need the intersection enhancement, and which are hopeless until
//! more taxis pass.

use crate::config::IdentifyConfig;
use crate::pipeline::mean_sample_interval;
use crate::preprocess::PartitionedTraces;
use crate::red::extract_stops;
use taxilight_roadnet::graph::LightId;
use taxilight_trace::time::Timestamp;

/// Coverage grade for one light's analysis window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum QualityGrade {
    /// No usable data at all.
    Starved,
    /// Identification will need the intersection enhancement and may still
    /// fail.
    Sparse,
    /// Solo identification usually works.
    Adequate,
    /// The paper's dense regime (its Fig. 6 worked example).
    Rich,
}

impl QualityGrade {
    /// Stable lowercase label, used as a bounded-cardinality metric
    /// label value and in serving JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            QualityGrade::Starved => "starved",
            QualityGrade::Sparse => "sparse",
            QualityGrade::Adequate => "adequate",
            QualityGrade::Rich => "rich",
        }
    }
}

/// Data-quality report for one light in one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LightQuality {
    /// The light assessed.
    pub light: LightId,
    /// All observations in the window.
    pub observations: usize,
    /// Observations within the influence radius of the stop line — the
    /// ones the cycle identifier actually consumes.
    pub near_stop_observations: usize,
    /// Distinct reporting taxis.
    pub distinct_taxis: usize,
    /// Near-stop observations per hour.
    pub records_per_hour: f64,
    /// Typical per-taxi report interval, seconds.
    pub typical_interval_s: f64,
    /// Extracted stop events near the light (red-duration evidence).
    pub stop_events: usize,
    /// The grade.
    pub grade: QualityGrade,
}

/// Assesses one light over `[t0, t1)`.
pub fn assess(
    parts: &PartitionedTraces,
    light: LightId,
    t0: Timestamp,
    t1: Timestamp,
    cfg: &IdentifyConfig,
) -> LightQuality {
    let obs = parts.window(light, t0, t1);
    let near: Vec<_> = obs.iter().filter(|o| o.dist_to_stop_m <= cfg.influence_radius_m).collect();
    let mut taxis: Vec<u32> = obs.iter().map(|o| o.taxi.0).collect();
    taxis.sort_unstable();
    taxis.dedup();
    let hours = (t1.delta(t0) as f64 / 3600.0).max(1e-9);
    let records_per_hour = near.len() as f64 / hours;
    let stops = extract_stops(obs, cfg.stationary_threshold_m)
        .into_iter()
        .filter(|s| s.dist_to_stop_m <= cfg.influence_radius_m)
        .count();

    // Grading mirrors the density sweep in EXPERIMENTS.md: the paper's
    // idlest monitored intersection logs ~50 records/h per approach and
    // needed enhancement; its busiest ~1250 per approach.
    let grade = if near.is_empty() {
        QualityGrade::Starved
    } else if records_per_hour >= 600.0 {
        QualityGrade::Rich
    } else if records_per_hour >= 150.0 {
        QualityGrade::Adequate
    } else if records_per_hour >= 40.0 {
        QualityGrade::Sparse
    } else {
        QualityGrade::Starved
    };

    LightQuality {
        light,
        observations: obs.len(),
        near_stop_observations: near.len(),
        distinct_taxis: taxis.len(),
        records_per_hour,
        typical_interval_s: mean_sample_interval(obs),
        stop_events: stops,
        grade,
    }
}

/// Assesses every light with data, sorted busiest first.
pub fn assess_all(
    parts: &PartitionedTraces,
    t0: Timestamp,
    t1: Timestamp,
    cfg: &IdentifyConfig,
) -> Vec<LightQuality> {
    let mut out: Vec<LightQuality> = parts
        .lights_with_data()
        .into_iter()
        .map(|light| assess(parts, light, t0, t1, cfg))
        .collect();
    out.sort_by(|a, b| b.records_per_hour.total_cmp(&a.records_per_hour));
    out
}

/// Counts lights per grade: `[starved, sparse, adequate, rich]`. The
/// compact coverage fingerprint of one analysis window — an accuracy
/// report stores it so a regression in map matching or simulation density
/// is visible next to the error numbers it would explain.
pub fn grade_counts(qualities: &[LightQuality]) -> [usize; 4] {
    let mut counts = [0usize; 4];
    for q in qualities {
        let k = match q.grade {
            QualityGrade::Starved => 0,
            QualityGrade::Sparse => 1,
            QualityGrade::Adequate => 2,
            QualityGrade::Rich => 3,
        };
        counts[k] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::testutil::planted_obs;

    fn parts_with(obs: Vec<crate::preprocess::LightObs>) -> PartitionedTraces {
        PartitionedTraces::from_buckets(4, [(LightId(2), obs.as_slice())])
    }

    #[test]
    fn grades_scale_with_density() {
        let cfg = IdentifyConfig::default();
        // planted_obs dist_to_stop is 5–200 m, all inside the 150 m radius
        // for ~3/4 of samples.
        let cases = [
            (4.0, QualityGrade::Rich),      // ~900/h near
            (15.0, QualityGrade::Adequate), // ~240/h
            (45.0, QualityGrade::Sparse),   // ~80/h
            (200.0, QualityGrade::Starved), // ~18/h
        ];
        for (gap, expected) in cases {
            let obs = planted_obs(98, 39, 0, 3600, gap, 7);
            let parts = parts_with(obs);
            let q = assess(&parts, LightId(2), Timestamp(0), Timestamp(3600), &cfg);
            assert_eq!(q.grade, expected, "gap {gap}: {q:?}");
        }
    }

    #[test]
    fn empty_light_is_starved() {
        let parts = parts_with(Vec::new());
        let q =
            assess(&parts, LightId(2), Timestamp(0), Timestamp(3600), &IdentifyConfig::default());
        assert_eq!(q.grade, QualityGrade::Starved);
        assert_eq!(q.observations, 0);
        assert_eq!(q.distinct_taxis, 0);
    }

    #[test]
    fn counts_are_consistent() {
        let obs = planted_obs(100, 40, 0, 3600, 10.0, 3);
        let n = obs.len();
        let parts = parts_with(obs);
        let q =
            assess(&parts, LightId(2), Timestamp(0), Timestamp(3600), &IdentifyConfig::default());
        assert_eq!(q.observations, n);
        assert!(q.near_stop_observations <= q.observations);
        assert!(q.distinct_taxis <= q.observations);
        assert!(q.distinct_taxis > 1);
        assert!(q.records_per_hour > 0.0);
    }

    #[test]
    fn assess_all_sorts_busiest_first() {
        let busy = planted_obs(100, 40, 0, 3600, 6.0, 1);
        let quiet = planted_obs(100, 40, 0, 3600, 60.0, 2);
        let parts = PartitionedTraces::from_buckets(
            4,
            [(LightId(0), quiet.as_slice()), (LightId(3), busy.as_slice())],
        );
        let all = assess_all(&parts, Timestamp(0), Timestamp(3600), &IdentifyConfig::default());
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].light, LightId(3));
        assert!(all[0].records_per_hour > all[1].records_per_hour);
    }

    #[test]
    fn grade_counts_buckets_by_grade() {
        let q = |grade| LightQuality {
            light: LightId(0),
            observations: 0,
            near_stop_observations: 0,
            distinct_taxis: 0,
            records_per_hour: 0.0,
            typical_interval_s: 20.0,
            stop_events: 0,
            grade,
        };
        let counts = grade_counts(&[
            q(QualityGrade::Rich),
            q(QualityGrade::Starved),
            q(QualityGrade::Rich),
            q(QualityGrade::Sparse),
        ]);
        assert_eq!(counts, [1, 1, 0, 2]);
        assert_eq!(grade_counts(&[]), [0, 0, 0, 0]);
    }

    #[test]
    fn grades_order_meaningfully() {
        assert!(QualityGrade::Rich > QualityGrade::Adequate);
        assert!(QualityGrade::Adequate > QualityGrade::Sparse);
        assert!(QualityGrade::Sparse > QualityGrade::Starved);
    }
}
