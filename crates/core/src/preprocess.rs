//! Data preprocessing: outlier filtering, map matching and partitioning
//! (paper Sec. IV, Figs. 4–5).
//!
//! Raw records are (1) dropped when implausible (GPS unavailable, absurd
//! speed — the paper uses GPS condition, passenger condition and heading
//! "only for outliers filtering"), (2) matched to the nearest
//! *orientation-compatible* road segment, and (3) partitioned by the
//! traffic light controlling that segment's downstream end. After
//! partitioning, "the traffic light scheduling identification algorithm
//! for different traffic lights can be easily paralleled".

use crate::config::IdentifyConfig;
use taxilight_roadnet::graph::{LightId, RoadNetwork};
use taxilight_roadnet::spatial::SegmentIndex;
use taxilight_trace::record::{PassengerState, TaxiId, TaxiRecord};
use taxilight_trace::stream::TraceLog;
use taxilight_trace::time::Timestamp;
use taxilight_trace::GeoPoint;

/// One record after map matching, reduced to the fields the per-light
/// algorithms consume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LightObs {
    /// Reporting taxi.
    pub taxi: TaxiId,
    /// Report time.
    pub time: Timestamp,
    /// Reported speed, km/h.
    pub speed_kmh: f64,
    /// Matched (map-corrected) position.
    pub position: GeoPoint,
    /// Distance along the approach from the fix to the stop line, meters.
    pub dist_to_stop_m: f64,
    /// Passenger state (used by the red-duration error filter).
    pub passenger: PassengerState,
}

/// Records partitioned per approach light, each bucket time-sorted.
#[derive(Debug, Clone)]
pub struct PartitionedTraces {
    per_light: Vec<Vec<LightObs>>,
}

impl PartitionedTraces {
    fn new(light_count: usize) -> Self {
        PartitionedTraces { per_light: vec![Vec::new(); light_count] }
    }

    /// Builds a partition from pre-bucketed observations (each bucket must
    /// already be time-sorted) — used by the streaming engine, which keeps
    /// its own sliding buffers.
    pub fn from_buckets<'a>(
        light_count: usize,
        buckets: impl IntoIterator<Item = (LightId, &'a [LightObs])>,
    ) -> Self {
        let mut parts = PartitionedTraces::new(light_count);
        for (light, obs) in buckets {
            let idx = light.0 as usize;
            if idx >= parts.per_light.len() {
                parts.per_light.resize(idx + 1, Vec::new());
            }
            parts.per_light[idx] = obs.to_vec();
        }
        parts
    }

    /// All observations for `light`, time-sorted.
    pub fn observations(&self, light: LightId) -> &[LightObs] {
        self.per_light.get(light.0 as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Observations for `light` with `t0 <= time < t1`.
    pub fn window(&self, light: LightId, t0: Timestamp, t1: Timestamp) -> &[LightObs] {
        let obs = self.observations(light);
        let lo = obs.partition_point(|o| o.time < t0);
        let hi = obs.partition_point(|o| o.time < t1);
        &obs[lo..hi]
    }

    /// Lights that received at least one observation.
    pub fn lights_with_data(&self) -> Vec<LightId> {
        self.per_light
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, _)| LightId(k as u32))
            .collect()
    }

    /// Total observations across lights.
    pub fn total(&self) -> usize {
        self.per_light.iter().map(Vec::len).sum()
    }
}

/// Counters describing what preprocessing did with the input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreprocessStats {
    /// Raw records offered.
    pub input: usize,
    /// Dropped by the plausibility filter.
    pub implausible: usize,
    /// No orientation-compatible segment within the search radius.
    pub unmatched: usize,
    /// Matched a segment whose end carries no light.
    pub unsignalized: usize,
    /// Partitioned to a light.
    pub partitioned: usize,
}

/// Registry mirrors of [`PreprocessStats`]: one counter per match outcome,
/// labelled by reason, so operators see *why* records were rejected
/// without plumbing stats structs through every call site.
struct MatchCounters {
    implausible: taxilight_obs::metrics::Counter,
    unmatched: taxilight_obs::metrics::Counter,
    unsignalized: taxilight_obs::metrics::Counter,
    partitioned: taxilight_obs::metrics::Counter,
}

impl MatchCounters {
    fn register() -> Self {
        let reg = taxilight_obs::metrics::global();
        let class = taxilight_obs::metrics::MetricClass::Deterministic;
        let help = "Records by map-matching outcome";
        let c = |reason| {
            reg.counter("taxilight_preprocess_records_total", &[("reason", reason)], class, help)
        };
        MatchCounters {
            implausible: c("implausible"),
            unmatched: c("unmatched"),
            unsignalized: c("unsignalized"),
            partitioned: c("partitioned"),
        }
    }
}

/// The map-matching + partitioning stage. Build once per network; reuse
/// across trace batches.
pub struct Preprocessor<'a> {
    net: &'a RoadNetwork,
    index: SegmentIndex,
    cfg: IdentifyConfig,
    counters: MatchCounters,
}

impl<'a> Preprocessor<'a> {
    /// Builds the spatial index for `net`.
    pub fn new(net: &'a RoadNetwork, cfg: IdentifyConfig) -> Self {
        let index = SegmentIndex::build(net, 250.0);
        Preprocessor { net, index, cfg, counters: MatchCounters::register() }
    }

    /// The active configuration.
    pub fn config(&self) -> &IdentifyConfig {
        &self.cfg
    }

    /// Matches one record; `None` when it fails the plausibility filter,
    /// cannot be matched, or its segment is unsignalized.
    ///
    /// The plausibility check runs first so non-finite coordinates, absurd
    /// speeds and NaN headings never reach the spatial index — the
    /// streaming engine feeds raw, unfiltered records straight in here.
    pub fn match_record(&self, r: &TaxiRecord) -> Option<(LightId, LightObs)> {
        if !r.is_plausible() {
            self.counters.implausible.inc();
            return None;
        }
        let Some(m) = self.index.match_point(
            self.net,
            r.position,
            r.heading_deg,
            self.cfg.match_radius_m,
            self.cfg.max_heading_diff_deg,
        ) else {
            self.counters.unmatched.inc();
            return None;
        };
        let Some(light) = self.net.light_of_segment(m.segment) else {
            self.counters.unsignalized.inc();
            return None;
        };
        self.counters.partitioned.inc();
        let seg = self.net.segment(m.segment);
        // Snap the fix onto the segment: map matching "places the discrete
        // GPS points onto a road segment".
        let from = self.net.node(seg.from).position;
        let snapped = from.destination(seg.heading_deg, m.along * seg.length_m);
        Some((
            light,
            LightObs {
                taxi: r.taxi,
                time: r.time,
                speed_kmh: r.speed_kmh,
                position: snapped,
                dist_to_stop_m: (1.0 - m.along) * seg.length_m,
                passenger: r.passenger,
            },
        ))
    }

    /// Runs the full preprocessing pass over a trace log.
    pub fn preprocess(&self, log: &mut TraceLog) -> (PartitionedTraces, PreprocessStats) {
        let mut out = PartitionedTraces::new(self.net.light_count());
        let mut stats = PreprocessStats { input: log.len(), ..Default::default() };
        for r in log.records() {
            if !r.is_plausible() {
                stats.implausible += 1;
                continue;
            }
            let m = self.index.match_point(
                self.net,
                r.position,
                r.heading_deg,
                self.cfg.match_radius_m,
                self.cfg.max_heading_diff_deg,
            );
            let Some(m) = m else {
                stats.unmatched += 1;
                continue;
            };
            let Some(light) = self.net.light_of_segment(m.segment) else {
                stats.unsignalized += 1;
                continue;
            };
            let seg = self.net.segment(m.segment);
            let from = self.net.node(seg.from).position;
            let snapped = from.destination(seg.heading_deg, m.along * seg.length_m);
            out.per_light[light.0 as usize].push(LightObs {
                taxi: r.taxi,
                time: r.time,
                speed_kmh: r.speed_kmh,
                position: snapped,
                dist_to_stop_m: (1.0 - m.along) * seg.length_m,
                passenger: r.passenger,
            });
            stats.partitioned += 1;
        }
        // `log.records()` is (taxi, time)-sorted; per-light buckets need
        // time order.
        for bucket in &mut out.per_light {
            bucket.sort_by_key(|o| (o.time, o.taxi));
        }
        self.counters.implausible.add(stats.implausible as u64);
        self.counters.unmatched.add(stats.unmatched as u64);
        self.counters.unsignalized.add(stats.unsignalized as u64);
        self.counters.partitioned.add(stats.partitioned as u64);
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxilight_roadnet::generators::{grid_city, GridConfig};
    use taxilight_trace::record::GpsCondition;

    fn world() -> taxilight_roadnet::generators::GeneratedCity {
        grid_city(&GridConfig { rows: 3, cols: 3, spacing_m: 600.0, ..GridConfig::default() })
    }

    /// A record driving east along the row-1 street toward the centre
    /// intersection, `dist_back` meters before the centre node.
    fn eastbound_record(
        city: &taxilight_roadnet::generators::GeneratedCity,
        dist_back: f64,
        secs: i64,
        speed: f64,
    ) -> TaxiRecord {
        let centre = city.net.node(city.node(1, 1)).position;
        TaxiRecord {
            taxi: TaxiId(0),
            position: centre.destination(270.0, dist_back),
            time: Timestamp(secs),
            speed_kmh: speed,
            heading_deg: 90.0,
            gps: GpsCondition::Available,
            overspeed: false,
            passenger: PassengerState::Vacant,
        }
    }

    #[test]
    fn partitions_to_the_correct_approach_light() {
        let city = world();
        let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
        let mut log = TraceLog::from_records(vec![
            eastbound_record(&city, 100.0, 10, 30.0),
            eastbound_record(&city, 50.0, 40, 10.0),
        ]);
        let (parts, stats) = pre.preprocess(&mut log);
        assert_eq!(stats.partitioned, 2);
        assert_eq!(stats.implausible + stats.unmatched + stats.unsignalized, 0);
        let lights = parts.lights_with_data();
        assert_eq!(lights.len(), 1, "both records approach one light");
        let obs = parts.observations(lights[0]);
        assert_eq!(obs.len(), 2);
        // Eastbound approach: the light's heading must be ~90°.
        let light = city.net.light(lights[0]).unwrap();
        assert!(taxilight_trace::geo::heading_difference(light.heading_deg, 90.0) < 5.0);
        // Distance to stop line decreases as the taxi advances, times sorted.
        assert!(obs[0].dist_to_stop_m > obs[1].dist_to_stop_m);
        assert!(obs[0].time < obs[1].time);
        assert!((obs[0].dist_to_stop_m - 100.0).abs() < 10.0);
    }

    #[test]
    fn heading_disambiguates_opposite_lanes() {
        // Needs two adjacent signalized intersections so both directions of
        // the street between them carry lights: use a 4×4 grid (interior
        // nodes (1,1) and (1,2) are both signalized).
        let city =
            grid_city(&GridConfig { rows: 4, cols: 4, spacing_m: 600.0, ..GridConfig::default() });
        let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
        let between = city.net.node(city.node(1, 1)).position.destination(90.0, 300.0); // midway to (1,2)
        let base = TaxiRecord {
            taxi: TaxiId(0),
            position: between,
            time: Timestamp(0),
            speed_kmh: 20.0,
            heading_deg: 90.0,
            gps: GpsCondition::Available,
            overspeed: false,
            passenger: PassengerState::Vacant,
        };
        let mut west = base;
        west.heading_deg = 270.0;
        let (le, oe) = pre.match_record(&base).unwrap();
        let (lw, ow) = pre.match_record(&west).unwrap();
        assert_ne!(le, lw, "opposite headings must map to different lights");
        // Eastbound approaches (1,2); westbound approaches (1,1).
        let light_e = city.net.light(le).unwrap();
        let light_w = city.net.light(lw).unwrap();
        assert!(taxilight_trace::geo::heading_difference(light_e.heading_deg, 90.0) < 5.0);
        assert!(taxilight_trace::geo::heading_difference(light_w.heading_deg, 270.0) < 5.0);
        // Both are ~300 m from their respective stop lines.
        assert!((oe.dist_to_stop_m - 300.0).abs() < 15.0);
        assert!((ow.dist_to_stop_m - 300.0).abs() < 15.0);
    }

    #[test]
    fn implausible_records_are_counted_and_dropped() {
        let city = world();
        let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
        let mut bad = eastbound_record(&city, 80.0, 0, 20.0);
        bad.gps = GpsCondition::Unavailable;
        let mut log = TraceLog::from_records(vec![bad]);
        let (parts, stats) = pre.preprocess(&mut log);
        assert_eq!(stats.implausible, 1);
        assert_eq!(parts.total(), 0);
    }

    #[test]
    fn far_away_records_are_unmatched() {
        let city = world();
        let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
        let mut r = eastbound_record(&city, 80.0, 0, 20.0);
        r.position = r.position.destination(0.0, 2_000.0); // off-network
        let mut log = TraceLog::from_records(vec![r]);
        let (_, stats) = pre.preprocess(&mut log);
        assert_eq!(stats.unmatched, 1);
    }

    #[test]
    fn boundary_segments_are_unsignalized() {
        let city = world();
        let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
        // A record heading east on row 0 toward the (unsignalized) corner
        // node (0,0)→(0,1) direction... actually toward (0,1) which IS
        // unsignalized only if it's a boundary. In a 3×3 grid only (1,1) is
        // interior, so (0,1) has no light.
        let toward = city.net.node(city.node(0, 1)).position;
        let r = TaxiRecord {
            position: toward.destination(270.0, 100.0),
            ..eastbound_record(&city, 0.0, 0, 20.0)
        };
        let mut log = TraceLog::from_records(vec![r]);
        let (_, stats) = pre.preprocess(&mut log);
        assert_eq!(stats.unsignalized, 1);
    }

    #[test]
    fn window_query_is_half_open_and_sorted() {
        let city = world();
        let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
        let records: Vec<TaxiRecord> = (0..10)
            .map(|k| eastbound_record(&city, 150.0 - k as f64, k as i64 * 10, 25.0))
            .collect();
        let mut log = TraceLog::from_records(records);
        let (parts, _) = pre.preprocess(&mut log);
        let light = parts.lights_with_data()[0];
        let w = parts.window(light, Timestamp(20), Timestamp(60));
        assert_eq!(w.len(), 4); // t = 20, 30, 40, 50
        assert!(w.iter().all(|o| o.time >= Timestamp(20) && o.time < Timestamp(60)));
        assert!(parts.window(light, Timestamp(500), Timestamp(600)).is_empty());
    }

    #[test]
    fn snapped_positions_lie_on_the_segment() {
        let city = world();
        let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
        // Offset the fix 30 m sideways; the snapped position must return to
        // the road.
        let mut r = eastbound_record(&city, 100.0, 0, 20.0);
        r.position = r.position.destination(0.0, 30.0);
        let (_, obs) = pre.match_record(&r).unwrap();
        let centre = city.net.node(city.node(1, 1)).position;
        let on_road = centre.destination(270.0, 100.0);
        assert!(obs.position.distance_m(on_road) < 5.0);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Any f64: non-finite and extreme values mixed with ordinary ones.
        fn wild_f64() -> impl Strategy<Value = f64> {
            (0u32..8, -400.0f64..400.0).prop_map(|(sel, v)| match sel {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 1.0e308,
                4 => -1.0e308,
                _ => v,
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn match_record_never_panics_on_arbitrary_records(
                lat in wild_f64(), lon in wild_f64(),
                t in -4_000_000_000i64..4_000_000_000,
                speed in wild_f64(), heading in wild_f64(),
                gps_ok in proptest::bool::ANY,
                occupied in proptest::bool::ANY,
            ) {
                let city = world();
                let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
                let r = TaxiRecord {
                    taxi: TaxiId(3),
                    position: GeoPoint::new(lat, lon),
                    time: Timestamp(t),
                    speed_kmh: speed,
                    heading_deg: heading,
                    gps: if gps_ok {
                        taxilight_trace::record::GpsCondition::Available
                    } else {
                        taxilight_trace::record::GpsCondition::Unavailable
                    },
                    overspeed: false,
                    passenger: if occupied {
                        PassengerState::Occupied
                    } else {
                        PassengerState::Vacant
                    },
                };
                // Must neither panic nor hand NaN downstream.
                if let Some((_, obs)) = pre.match_record(&r) {
                    prop_assert!(obs.position.is_valid());
                    prop_assert!(obs.dist_to_stop_m.is_finite());
                    prop_assert!(obs.speed_kmh.is_finite());
                }
                // The batch path must agree with the streaming path on
                // whether the record is usable at all.
                let mut log = TraceLog::from_records(vec![r]);
                let (parts, stats) = pre.preprocess(&mut log);
                prop_assert_eq!(stats.input, 1);
                if !r.is_plausible() {
                    prop_assert_eq!(stats.implausible, 1);
                    prop_assert_eq!(parts.total(), 0);
                }
            }

            #[test]
            fn matched_records_stay_within_matching_radius(
                bearing in 0.0f64..360.0,
                dist_m in 0.0f64..2_000.0,
                heading in 0.0f64..360.0,
                speed in 0.0f64..120.0,
            ) {
                let city = world();
                let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
                let centre = city.net.node(city.node(1, 1)).position;
                let r = TaxiRecord {
                    taxi: TaxiId(0),
                    position: centre.destination(bearing, dist_m),
                    time: Timestamp(0),
                    speed_kmh: speed,
                    heading_deg: heading,
                    gps: taxilight_trace::record::GpsCondition::Available,
                    overspeed: false,
                    passenger: PassengerState::Vacant,
                };
                if let Some((light, obs)) = pre.match_record(&r) {
                    prop_assert!(city.net.light(light).is_some());
                    // The snapped point is the closest point on the matched
                    // segment, so it cannot be farther than the matching
                    // radius (plus numerical slack).
                    let radius = pre.config().match_radius_m;
                    let d = r.position.distance_m(obs.position);
                    prop_assert!(d <= radius + 2.0, "snapped {d} m away, radius {radius}");
                }
            }
        }
    }

    #[test]
    fn empty_log_gives_empty_partition() {
        let city = world();
        let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
        let (parts, stats) = pre.preprocess(&mut TraceLog::new());
        assert_eq!(stats.input, 0);
        assert_eq!(parts.total(), 0);
        assert!(parts.lights_with_data().is_empty());
        assert!(parts.observations(LightId(0)).is_empty());
        assert!(parts.observations(LightId(999)).is_empty());
    }
}
