//! Data preprocessing: outlier filtering, map matching and partitioning
//! (paper Sec. IV, Figs. 4–5).
//!
//! Raw records are (1) dropped when implausible (GPS unavailable, absurd
//! speed — the paper uses GPS condition, passenger condition and heading
//! "only for outliers filtering"), (2) matched to the nearest
//! *orientation-compatible* road segment, and (3) partitioned by the
//! traffic light controlling that segment's downstream end. After
//! partitioning, "the traffic light scheduling identification algorithm
//! for different traffic lights can be easily paralleled".

use crate::config::IdentifyConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use taxilight_obs::span;
use taxilight_roadnet::graph::{LightId, RoadNetwork};
use taxilight_roadnet::spatial::SegmentIndex;
use taxilight_trace::io::TraceFileError;
use taxilight_trace::record::{PassengerState, TaxiId, TaxiRecord};
use taxilight_trace::source::{RecordBatch, RecordSource};
use taxilight_trace::stream::TraceLog;
use taxilight_trace::time::Timestamp;
use taxilight_trace::GeoPoint;

/// One record after map matching, reduced to the fields the per-light
/// algorithms consume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LightObs {
    /// Reporting taxi.
    pub taxi: TaxiId,
    /// Report time.
    pub time: Timestamp,
    /// Reported speed, km/h.
    pub speed_kmh: f64,
    /// Matched (map-corrected) position.
    pub position: GeoPoint,
    /// Distance along the approach from the fix to the stop line, meters.
    pub dist_to_stop_m: f64,
    /// Passenger state (used by the red-duration error filter).
    pub passenger: PassengerState,
}

/// Records partitioned per approach light, each bucket time-sorted.
#[derive(Debug, Clone)]
pub struct PartitionedTraces {
    per_light: Vec<Vec<LightObs>>,
}

impl PartitionedTraces {
    fn new(light_count: usize) -> Self {
        PartitionedTraces { per_light: vec![Vec::new(); light_count] }
    }

    /// Builds a partition from pre-bucketed observations (each bucket must
    /// already be time-sorted) — used by the streaming engine, which keeps
    /// its own sliding buffers.
    pub fn from_buckets<'a>(
        light_count: usize,
        buckets: impl IntoIterator<Item = (LightId, &'a [LightObs])>,
    ) -> Self {
        let mut parts = PartitionedTraces::new(light_count);
        for (light, obs) in buckets {
            let idx = light.0 as usize;
            if idx >= parts.per_light.len() {
                parts.per_light.resize(idx + 1, Vec::new());
            }
            parts.per_light[idx] = obs.to_vec();
        }
        parts
    }

    /// All observations for `light`, time-sorted.
    pub fn observations(&self, light: LightId) -> &[LightObs] {
        self.per_light.get(light.0 as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Observations for `light` with `t0 <= time < t1`.
    pub fn window(&self, light: LightId, t0: Timestamp, t1: Timestamp) -> &[LightObs] {
        let obs = self.observations(light);
        let lo = obs.partition_point(|o| o.time < t0);
        let hi = obs.partition_point(|o| o.time < t1);
        &obs[lo..hi]
    }

    /// Lights that received at least one observation.
    pub fn lights_with_data(&self) -> Vec<LightId> {
        self.per_light
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, _)| LightId(k as u32))
            .collect()
    }

    /// Total observations across lights.
    pub fn total(&self) -> usize {
        self.per_light.iter().map(Vec::len).sum()
    }
}

/// Counters describing what preprocessing did with the input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreprocessStats {
    /// Raw records offered.
    pub input: usize,
    /// Dropped by the plausibility filter.
    pub implausible: usize,
    /// No orientation-compatible segment within the search radius.
    pub unmatched: usize,
    /// Matched a segment whose end carries no light.
    pub unsignalized: usize,
    /// Partitioned to a light.
    pub partitioned: usize,
}

impl PreprocessStats {
    /// Component-wise sum, for accumulating per-batch stats.
    pub fn merge(&mut self, other: &PreprocessStats) {
        self.input += other.input;
        self.implausible += other.implausible;
        self.unmatched += other.unmatched;
        self.unsignalized += other.unsignalized;
        self.partitioned += other.partitioned;
    }
}

/// Per-instance lifetime totals of [`PreprocessStats`], kept in atomics so
/// the parallel batch-matching path ([`Preprocessor::match_record`] takes
/// `&self`) can update them. Unlike the per-call stats a single
/// `preprocess` returns, these accumulate across every batch the instance
/// ever sees — the fix for reject-reason metrics being dropped between
/// batches.
#[derive(Debug, Default)]
struct CumulativeStats {
    input: AtomicU64,
    implausible: AtomicU64,
    unmatched: AtomicU64,
    unsignalized: AtomicU64,
    partitioned: AtomicU64,
}

impl CumulativeStats {
    fn merge(&self, s: &PreprocessStats) {
        self.input.fetch_add(s.input as u64, Ordering::Relaxed);
        self.implausible.fetch_add(s.implausible as u64, Ordering::Relaxed);
        self.unmatched.fetch_add(s.unmatched as u64, Ordering::Relaxed);
        self.unsignalized.fetch_add(s.unsignalized as u64, Ordering::Relaxed);
        self.partitioned.fetch_add(s.partitioned as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> PreprocessStats {
        PreprocessStats {
            input: self.input.load(Ordering::Relaxed) as usize,
            implausible: self.implausible.load(Ordering::Relaxed) as usize,
            unmatched: self.unmatched.load(Ordering::Relaxed) as usize,
            unsignalized: self.unsignalized.load(Ordering::Relaxed) as usize,
            partitioned: self.partitioned.load(Ordering::Relaxed) as usize,
        }
    }
}

/// Registry mirrors of [`PreprocessStats`]: one counter per match outcome,
/// labelled by reason, so operators see *why* records were rejected
/// without plumbing stats structs through every call site.
struct MatchCounters {
    implausible: taxilight_obs::metrics::Counter,
    unmatched: taxilight_obs::metrics::Counter,
    unsignalized: taxilight_obs::metrics::Counter,
    partitioned: taxilight_obs::metrics::Counter,
}

impl MatchCounters {
    fn register() -> Self {
        let reg = taxilight_obs::metrics::global();
        let class = taxilight_obs::metrics::MetricClass::Deterministic;
        let help = "Records by map-matching outcome";
        let c = |reason| {
            reg.counter("taxilight_preprocess_records_total", &[("reason", reason)], class, help)
        };
        MatchCounters {
            implausible: c("implausible"),
            unmatched: c("unmatched"),
            unsignalized: c("unsignalized"),
            partitioned: c("partitioned"),
        }
    }

    /// Bulk-adds one batch's stats (the per-batch paths count locally and
    /// publish once, keeping the hot loop free of atomic traffic).
    fn add_stats(&self, s: &PreprocessStats) {
        self.implausible.add(s.implausible as u64);
        self.unmatched.add(s.unmatched as u64);
        self.unsignalized.add(s.unsignalized as u64);
        self.partitioned.add(s.partitioned as u64);
    }
}

/// Outcome of classifying one raw record — the single code path shared by
/// [`Preprocessor::match_record`], [`Preprocessor::preprocess`] and
/// [`Preprocessor::preprocess_source`], so the batch, streaming and
/// per-record intakes can never drift apart.
enum Classified {
    Implausible,
    Unmatched,
    Unsignalized,
    Partitioned(LightId, LightObs),
}

/// The map-matching + partitioning stage. Build once per network; reuse
/// across trace batches.
pub struct Preprocessor<'a> {
    net: &'a RoadNetwork,
    index: SegmentIndex,
    cfg: IdentifyConfig,
    counters: MatchCounters,
    cumulative: CumulativeStats,
}

impl<'a> Preprocessor<'a> {
    /// Builds the spatial index for `net`.
    pub fn new(net: &'a RoadNetwork, cfg: IdentifyConfig) -> Self {
        let index = SegmentIndex::build(net, 250.0);
        Preprocessor {
            net,
            index,
            cfg,
            counters: MatchCounters::register(),
            cumulative: CumulativeStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &IdentifyConfig {
        &self.cfg
    }

    /// Lifetime totals across every record this instance has seen — every
    /// `preprocess`/`preprocess_source` call *and* every `match_record`
    /// (the streaming engine's per-record path). Unlike the per-call
    /// [`PreprocessStats`], these never reset between batches; the
    /// process-wide registry counters (`taxilight_preprocess_records_total`)
    /// additionally accumulate across instances.
    pub fn cumulative_stats(&self) -> PreprocessStats {
        self.cumulative.snapshot()
    }

    /// Classifies one record. Pure with respect to counters — callers
    /// decide how the outcome is tallied (per-record vs per-batch).
    fn classify(&self, r: &TaxiRecord) -> Classified {
        if !r.is_plausible() {
            return Classified::Implausible;
        }
        let Some(m) = self.index.match_point(
            self.net,
            r.position,
            r.heading_deg,
            self.cfg.match_radius_m,
            self.cfg.max_heading_diff_deg,
        ) else {
            return Classified::Unmatched;
        };
        let Some(light) = self.net.light_of_segment(m.segment) else {
            return Classified::Unsignalized;
        };
        let seg = self.net.segment(m.segment);
        // Snap the fix onto the segment: map matching "places the discrete
        // GPS points onto a road segment".
        let from = self.net.node(seg.from).position;
        let snapped = from.destination(seg.heading_deg, m.along * seg.length_m);
        Classified::Partitioned(
            light,
            LightObs {
                taxi: r.taxi,
                time: r.time,
                speed_kmh: r.speed_kmh,
                position: snapped,
                dist_to_stop_m: (1.0 - m.along) * seg.length_m,
                passenger: r.passenger,
            },
        )
    }

    /// Matches one record; `None` when it fails the plausibility filter,
    /// cannot be matched, or its segment is unsignalized.
    ///
    /// The plausibility check runs first so non-finite coordinates, absurd
    /// speeds and NaN headings never reach the spatial index — the
    /// streaming engine feeds raw, unfiltered records straight in here.
    pub fn match_record(&self, r: &TaxiRecord) -> Option<(LightId, LightObs)> {
        let mut s = PreprocessStats { input: 1, ..Default::default() };
        let out = match self.classify(r) {
            Classified::Implausible => {
                self.counters.implausible.inc();
                s.implausible = 1;
                None
            }
            Classified::Unmatched => {
                self.counters.unmatched.inc();
                s.unmatched = 1;
                None
            }
            Classified::Unsignalized => {
                self.counters.unsignalized.inc();
                s.unsignalized = 1;
                None
            }
            Classified::Partitioned(light, obs) => {
                self.counters.partitioned.inc();
                s.partitioned = 1;
                Some((light, obs))
            }
        };
        self.cumulative.merge(&s);
        out
    }

    /// Classifies `r` into `out`/`stats` — the per-record body shared by
    /// the in-memory and streaming passes.
    fn partition_into(
        &self,
        r: &TaxiRecord,
        out: &mut PartitionedTraces,
        stats: &mut PreprocessStats,
    ) {
        match self.classify(r) {
            Classified::Implausible => stats.implausible += 1,
            Classified::Unmatched => stats.unmatched += 1,
            Classified::Unsignalized => stats.unsignalized += 1,
            Classified::Partitioned(light, obs) => {
                out.per_light[light.0 as usize].push(obs);
                stats.partitioned += 1;
            }
        }
    }

    /// Runs the full preprocessing pass over a trace log.
    pub fn preprocess(&self, log: &mut TraceLog) -> (PartitionedTraces, PreprocessStats) {
        let mut out = PartitionedTraces::new(self.net.light_count());
        let mut stats = PreprocessStats { input: log.len(), ..Default::default() };
        for r in log.records() {
            self.partition_into(r, &mut out, &mut stats);
        }
        // `log.records()` is (taxi, time)-sorted; per-light buckets need
        // time order.
        for bucket in &mut out.per_light {
            bucket.sort_by_key(|o| (o.time, o.taxi));
        }
        self.counters.add_stats(&stats);
        self.cumulative.merge(&stats);
        (out, stats)
    }

    /// Runs the full preprocessing pass over a bounded-memory
    /// [`RecordSource`], accumulating per-light buckets batch by batch
    /// without ever materializing the feed.
    ///
    /// Resident memory is `O(chunk) + O(partitioned output)`; for a feed
    /// whose records mostly miss the network (the city-day regime) the
    /// output term is the small one. Consumers needing the full bound —
    /// output independent of feed length — should stream into
    /// [`RealtimeIdentifier`](crate::realtime::RealtimeIdentifier), whose
    /// window eviction caps the buckets too.
    ///
    /// **Equivalence.** For a feed yielding the same record sequence as
    /// `log.records()`, the result is bit-identical to [`preprocess`] for
    /// *every* batch split: buckets get the same members (same
    /// classifier), and the final stable `(time, taxi)` sort leaves
    /// equal-key observations in feed order — exactly what `preprocess`
    /// produces — regardless of where batch boundaries fall. Pinned by
    /// `tests/stream_equivalence.rs`.
    ///
    /// [`preprocess`]: Preprocessor::preprocess
    pub fn preprocess_source<S: RecordSource>(
        &self,
        src: &mut S,
    ) -> Result<(PartitionedTraces, PreprocessStats), TraceFileError> {
        let mut out = PartitionedTraces::new(self.net.light_count());
        let mut stats = PreprocessStats::default();
        let mut batch = RecordBatch::new();
        let mut batch_no = 0u64;
        loop {
            let more = src.next_batch(&mut batch)?;
            if !batch.records.is_empty() {
                let _span =
                    span!("preprocess.batch", batch = batch_no, records = batch.records.len());
                stats.input += batch.records.len();
                for r in &batch.records {
                    self.partition_into(r, &mut out, &mut stats);
                }
                batch_no += 1;
            }
            if !more {
                break;
            }
        }
        for bucket in &mut out.per_light {
            bucket.sort_by_key(|o| (o.time, o.taxi));
        }
        self.counters.add_stats(&stats);
        self.cumulative.merge(&stats);
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxilight_roadnet::generators::{grid_city, GridConfig};
    use taxilight_trace::record::GpsCondition;

    fn world() -> taxilight_roadnet::generators::GeneratedCity {
        grid_city(&GridConfig { rows: 3, cols: 3, spacing_m: 600.0, ..GridConfig::default() })
    }

    /// A record driving east along the row-1 street toward the centre
    /// intersection, `dist_back` meters before the centre node.
    fn eastbound_record(
        city: &taxilight_roadnet::generators::GeneratedCity,
        dist_back: f64,
        secs: i64,
        speed: f64,
    ) -> TaxiRecord {
        let centre = city.net.node(city.node(1, 1)).position;
        TaxiRecord {
            taxi: TaxiId(0),
            position: centre.destination(270.0, dist_back),
            time: Timestamp(secs),
            speed_kmh: speed,
            heading_deg: 90.0,
            gps: GpsCondition::Available,
            overspeed: false,
            passenger: PassengerState::Vacant,
        }
    }

    #[test]
    fn partitions_to_the_correct_approach_light() {
        let city = world();
        let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
        let mut log = TraceLog::from_records(vec![
            eastbound_record(&city, 100.0, 10, 30.0),
            eastbound_record(&city, 50.0, 40, 10.0),
        ]);
        let (parts, stats) = pre.preprocess(&mut log);
        assert_eq!(stats.partitioned, 2);
        assert_eq!(stats.implausible + stats.unmatched + stats.unsignalized, 0);
        let lights = parts.lights_with_data();
        assert_eq!(lights.len(), 1, "both records approach one light");
        let obs = parts.observations(lights[0]);
        assert_eq!(obs.len(), 2);
        // Eastbound approach: the light's heading must be ~90°.
        let light = city.net.light(lights[0]).unwrap();
        assert!(taxilight_trace::geo::heading_difference(light.heading_deg, 90.0) < 5.0);
        // Distance to stop line decreases as the taxi advances, times sorted.
        assert!(obs[0].dist_to_stop_m > obs[1].dist_to_stop_m);
        assert!(obs[0].time < obs[1].time);
        assert!((obs[0].dist_to_stop_m - 100.0).abs() < 10.0);
    }

    #[test]
    fn heading_disambiguates_opposite_lanes() {
        // Needs two adjacent signalized intersections so both directions of
        // the street between them carry lights: use a 4×4 grid (interior
        // nodes (1,1) and (1,2) are both signalized).
        let city =
            grid_city(&GridConfig { rows: 4, cols: 4, spacing_m: 600.0, ..GridConfig::default() });
        let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
        let between = city.net.node(city.node(1, 1)).position.destination(90.0, 300.0); // midway to (1,2)
        let base = TaxiRecord {
            taxi: TaxiId(0),
            position: between,
            time: Timestamp(0),
            speed_kmh: 20.0,
            heading_deg: 90.0,
            gps: GpsCondition::Available,
            overspeed: false,
            passenger: PassengerState::Vacant,
        };
        let mut west = base;
        west.heading_deg = 270.0;
        let (le, oe) = pre.match_record(&base).unwrap();
        let (lw, ow) = pre.match_record(&west).unwrap();
        assert_ne!(le, lw, "opposite headings must map to different lights");
        // Eastbound approaches (1,2); westbound approaches (1,1).
        let light_e = city.net.light(le).unwrap();
        let light_w = city.net.light(lw).unwrap();
        assert!(taxilight_trace::geo::heading_difference(light_e.heading_deg, 90.0) < 5.0);
        assert!(taxilight_trace::geo::heading_difference(light_w.heading_deg, 270.0) < 5.0);
        // Both are ~300 m from their respective stop lines.
        assert!((oe.dist_to_stop_m - 300.0).abs() < 15.0);
        assert!((ow.dist_to_stop_m - 300.0).abs() < 15.0);
    }

    #[test]
    fn implausible_records_are_counted_and_dropped() {
        let city = world();
        let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
        let mut bad = eastbound_record(&city, 80.0, 0, 20.0);
        bad.gps = GpsCondition::Unavailable;
        let mut log = TraceLog::from_records(vec![bad]);
        let (parts, stats) = pre.preprocess(&mut log);
        assert_eq!(stats.implausible, 1);
        assert_eq!(parts.total(), 0);
    }

    #[test]
    fn far_away_records_are_unmatched() {
        let city = world();
        let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
        let mut r = eastbound_record(&city, 80.0, 0, 20.0);
        r.position = r.position.destination(0.0, 2_000.0); // off-network
        let mut log = TraceLog::from_records(vec![r]);
        let (_, stats) = pre.preprocess(&mut log);
        assert_eq!(stats.unmatched, 1);
    }

    #[test]
    fn boundary_segments_are_unsignalized() {
        let city = world();
        let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
        // A record heading east on row 0 toward the (unsignalized) corner
        // node (0,0)→(0,1) direction... actually toward (0,1) which IS
        // unsignalized only if it's a boundary. In a 3×3 grid only (1,1) is
        // interior, so (0,1) has no light.
        let toward = city.net.node(city.node(0, 1)).position;
        let r = TaxiRecord {
            position: toward.destination(270.0, 100.0),
            ..eastbound_record(&city, 0.0, 0, 20.0)
        };
        let mut log = TraceLog::from_records(vec![r]);
        let (_, stats) = pre.preprocess(&mut log);
        assert_eq!(stats.unsignalized, 1);
    }

    #[test]
    fn window_query_is_half_open_and_sorted() {
        let city = world();
        let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
        let records: Vec<TaxiRecord> = (0..10)
            .map(|k| eastbound_record(&city, 150.0 - k as f64, k as i64 * 10, 25.0))
            .collect();
        let mut log = TraceLog::from_records(records);
        let (parts, _) = pre.preprocess(&mut log);
        let light = parts.lights_with_data()[0];
        let w = parts.window(light, Timestamp(20), Timestamp(60));
        assert_eq!(w.len(), 4); // t = 20, 30, 40, 50
        assert!(w.iter().all(|o| o.time >= Timestamp(20) && o.time < Timestamp(60)));
        assert!(parts.window(light, Timestamp(500), Timestamp(600)).is_empty());
    }

    #[test]
    fn snapped_positions_lie_on_the_segment() {
        let city = world();
        let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
        // Offset the fix 30 m sideways; the snapped position must return to
        // the road.
        let mut r = eastbound_record(&city, 100.0, 0, 20.0);
        r.position = r.position.destination(0.0, 30.0);
        let (_, obs) = pre.match_record(&r).unwrap();
        let centre = city.net.node(city.node(1, 1)).position;
        let on_road = centre.destination(270.0, 100.0);
        assert!(obs.position.distance_m(on_road) < 5.0);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Any f64: non-finite and extreme values mixed with ordinary ones.
        fn wild_f64() -> impl Strategy<Value = f64> {
            (0u32..8, -400.0f64..400.0).prop_map(|(sel, v)| match sel {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 1.0e308,
                4 => -1.0e308,
                _ => v,
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn match_record_never_panics_on_arbitrary_records(
                lat in wild_f64(), lon in wild_f64(),
                t in -4_000_000_000i64..4_000_000_000,
                speed in wild_f64(), heading in wild_f64(),
                gps_ok in proptest::bool::ANY,
                occupied in proptest::bool::ANY,
            ) {
                let city = world();
                let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
                let r = TaxiRecord {
                    taxi: TaxiId(3),
                    position: GeoPoint::new(lat, lon),
                    time: Timestamp(t),
                    speed_kmh: speed,
                    heading_deg: heading,
                    gps: if gps_ok {
                        taxilight_trace::record::GpsCondition::Available
                    } else {
                        taxilight_trace::record::GpsCondition::Unavailable
                    },
                    overspeed: false,
                    passenger: if occupied {
                        PassengerState::Occupied
                    } else {
                        PassengerState::Vacant
                    },
                };
                // Must neither panic nor hand NaN downstream.
                if let Some((_, obs)) = pre.match_record(&r) {
                    prop_assert!(obs.position.is_valid());
                    prop_assert!(obs.dist_to_stop_m.is_finite());
                    prop_assert!(obs.speed_kmh.is_finite());
                }
                // The batch path must agree with the streaming path on
                // whether the record is usable at all.
                let mut log = TraceLog::from_records(vec![r]);
                let (parts, stats) = pre.preprocess(&mut log);
                prop_assert_eq!(stats.input, 1);
                if !r.is_plausible() {
                    prop_assert_eq!(stats.implausible, 1);
                    prop_assert_eq!(parts.total(), 0);
                }
            }

            #[test]
            fn matched_records_stay_within_matching_radius(
                bearing in 0.0f64..360.0,
                dist_m in 0.0f64..2_000.0,
                heading in 0.0f64..360.0,
                speed in 0.0f64..120.0,
            ) {
                let city = world();
                let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
                let centre = city.net.node(city.node(1, 1)).position;
                let r = TaxiRecord {
                    taxi: TaxiId(0),
                    position: centre.destination(bearing, dist_m),
                    time: Timestamp(0),
                    speed_kmh: speed,
                    heading_deg: heading,
                    gps: taxilight_trace::record::GpsCondition::Available,
                    overspeed: false,
                    passenger: PassengerState::Vacant,
                };
                if let Some((light, obs)) = pre.match_record(&r) {
                    prop_assert!(city.net.light(light).is_some());
                    // The snapped point is the closest point on the matched
                    // segment, so it cannot be farther than the matching
                    // radius (plus numerical slack).
                    let radius = pre.config().match_radius_m;
                    let d = r.position.distance_m(obs.position);
                    prop_assert!(d <= radius + 2.0, "snapped {d} m away, radius {radius}");
                }
            }
        }
    }

    #[test]
    fn preprocess_source_matches_in_memory_for_any_chunk() {
        use taxilight_trace::source::MemorySource;
        let city = world();
        let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
        let mut records: Vec<TaxiRecord> = (0..40)
            .map(|k| eastbound_record(&city, 180.0 - 4.0 * k as f64, k as i64 * 9, 25.0))
            .collect();
        records[7].gps = GpsCondition::Unavailable; // one reject on the way
        let mut log = TraceLog::from_records(records.clone());
        let (want_parts, want_stats) = pre.preprocess(&mut log);
        let sorted = log.records().to_vec();
        for chunk in [1, 3, 17, 40, 1000] {
            let mut src = MemorySource::new(&sorted, chunk);
            let (parts, stats) = pre.preprocess_source(&mut src).unwrap();
            assert_eq!(stats, want_stats, "stats diverged at chunk_records={chunk}");
            assert_eq!(parts.total(), want_parts.total());
            for light in want_parts.lights_with_data() {
                assert_eq!(
                    parts.observations(light),
                    want_parts.observations(light),
                    "bucket diverged at chunk_records={chunk}"
                );
            }
        }
    }

    /// Satellite fix pin: reject-reason stats must accumulate across
    /// batches on one instance (`cumulative_stats`) and across instance
    /// re-creation (the registry counters) — re-creating a `Preprocessor`
    /// per batch used to silently zero the per-instance view.
    #[test]
    fn reject_reason_stats_accumulate_across_batches_and_instances() {
        let city = world();
        let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
        let mut bad = eastbound_record(&city, 80.0, 0, 20.0);
        bad.gps = GpsCondition::Unavailable;
        let mut far = eastbound_record(&city, 80.0, 5, 20.0);
        far.position = far.position.destination(0.0, 2_000.0);
        let good = eastbound_record(&city, 90.0, 10, 20.0);

        // Three separate batches through one instance.
        let (_, s1) = pre.preprocess(&mut TraceLog::from_records(vec![bad, good]));
        let (_, s2) = pre.preprocess(&mut TraceLog::from_records(vec![far]));
        assert!(pre.match_record(&good).is_some()); // streaming path counts too
        assert_eq!(s1.implausible, 1);
        assert_eq!(s2.unmatched, 1);
        let total = pre.cumulative_stats();
        assert_eq!(
            total,
            PreprocessStats {
                input: 4,
                implausible: 1,
                unmatched: 1,
                unsignalized: 0,
                partitioned: 2
            }
        );

        // Registry counters survive instance re-creation: a fresh
        // Preprocessor re-registers the same underlying counters, so the
        // process-wide view keeps growing instead of resetting.
        let reg = taxilight_obs::metrics::global();
        let class = taxilight_obs::metrics::MetricClass::Deterministic;
        let help = "Records by map-matching outcome";
        let implausible_counter = reg.counter(
            "taxilight_preprocess_records_total",
            &[("reason", "implausible")],
            class,
            help,
        );
        let before = implausible_counter.get();
        drop(pre);
        let pre2 = Preprocessor::new(&city.net, IdentifyConfig::default());
        pre2.preprocess(&mut TraceLog::from_records(vec![bad]));
        assert_eq!(implausible_counter.get(), before + 1, "registry counter reset on re-create");
        // But the per-instance cumulative view starts fresh.
        assert_eq!(pre2.cumulative_stats().input, 1);
        assert_eq!(pre2.cumulative_stats().implausible, 1);
    }

    #[test]
    fn empty_source_gives_empty_partition() {
        use taxilight_trace::source::MemorySource;
        let city = world();
        let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
        let (parts, stats) = pre.preprocess_source(&mut MemorySource::new(&[], 8)).unwrap();
        assert_eq!(stats, PreprocessStats::default());
        assert_eq!(parts.total(), 0);
    }

    #[test]
    fn empty_log_gives_empty_partition() {
        let city = world();
        let pre = Preprocessor::new(&city.net, IdentifyConfig::default());
        let (parts, stats) = pre.preprocess(&mut TraceLog::new());
        assert_eq!(stats.input, 0);
        assert_eq!(parts.total(), 0);
        assert!(parts.lights_with_data().is_empty());
        assert!(parts.observations(LightId(0)).is_empty());
        assert!(parts.observations(LightId(999)).is_empty());
    }
}
