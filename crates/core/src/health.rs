//! Per-light health: estimate confidence, data-quality grade, and
//! freshness, accumulated round by round from the streaming engine.
//!
//! The paper's real-time mode (§VI–§VII) stands or falls per light — a
//! starved approach fails identification silently while a rich one
//! re-identifies every round. [`HealthRegistry`] turns that into an
//! operational surface: for every light the [`RealtimeIdentifier`] has
//! ever attempted it keeps the latest [`LightHealth`] — cycle SNR,
//! [`QualityGrade`], last-identified round/event-time, a failure-reason
//! breakdown, and the change count — the record behind the serving
//! daemon's `/lights` endpoints and grade-bucketed gauges.
//!
//! Everything here derives from the **feed clock** (record timestamps)
//! and deterministic round state, never the wall clock: replaying the
//! same feed bytes reproduces every field bit-for-bit, which is exactly
//! what `daemon_e2e.rs` asserts against an offline replay.
//!
//! [`RealtimeIdentifier`]: crate::realtime::RealtimeIdentifier

use crate::pipeline::{IdentifyError, LightSchedule};
use crate::quality::{LightQuality, QualityGrade};
use std::collections::BTreeMap;
use taxilight_roadnet::graph::LightId;
use taxilight_trace::time::Timestamp;

/// Cumulative identification-failure counts by reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FailureCounts {
    /// No observations reached the identifier.
    pub no_data: u64,
    /// Configuration rejected for this request.
    pub config: u64,
    /// Cycle-length identification failed (no usable DFT peak).
    pub cycle: u64,
    /// Red-duration estimation failed.
    pub red: u64,
    /// Change-point split failed.
    pub change_point: u64,
}

impl FailureCounts {
    /// Records one failure under its reason bucket.
    pub fn record(&mut self, err: &IdentifyError) {
        match err {
            IdentifyError::NoData => self.no_data += 1,
            IdentifyError::Config(_) => self.config += 1,
            IdentifyError::Cycle(_) => self.cycle += 1,
            IdentifyError::Red(_) => self.red += 1,
            IdentifyError::ChangePoint(_) => self.change_point += 1,
        }
    }

    /// Total failures across all reasons.
    pub fn total(&self) -> u64 {
        self.no_data + self.config + self.cycle + self.red + self.change_point
    }
}

/// One light's health as of the most recent round that attempted it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LightHealth {
    /// The light.
    pub light: LightId,
    /// Data-quality grade of the latest round's analysis window.
    pub grade: QualityGrade,
    /// Observations in the latest window.
    pub observations: usize,
    /// Near-stop observations per hour in the latest window.
    pub records_per_hour: f64,
    /// Rounds that attempted this light.
    pub attempts: u64,
    /// Rounds that identified a schedule.
    pub successes: u64,
    /// Failed rounds since the last success (0 right after a success).
    pub consecutive_failures: u64,
    /// Failure counts by reason, cumulative.
    pub failures: FailureCounts,
    /// Confirmed scheduling changes observed for this light.
    pub changes: u64,
    /// Cycle-estimate signal-to-noise ratio of the last success
    /// (0.0 until a first success).
    pub snr: f64,
    /// Cycle length of the last success, seconds (0.0 until then).
    pub cycle_s: f64,
    /// Round counter (schedule-view version) of the last success;
    /// 0 means never identified.
    pub last_version: u64,
    /// Feed-clock instant of the last successful identification.
    pub last_at: Option<Timestamp>,
}

impl LightHealth {
    fn new(light: LightId) -> Self {
        LightHealth {
            light,
            grade: QualityGrade::Starved,
            observations: 0,
            records_per_hour: 0.0,
            attempts: 0,
            successes: 0,
            consecutive_failures: 0,
            failures: FailureCounts::default(),
            changes: 0,
            snr: 0.0,
            cycle_s: 0.0,
            last_version: 0,
            last_at: None,
        }
    }

    /// Whether any round ever identified this light.
    pub fn identified(&self) -> bool {
        self.last_version > 0
    }

    /// Feed-clock seconds between `watermark` and the last successful
    /// identification — the estimate's age. `None` until a first
    /// success; clamped at zero (a success can never postdate the
    /// watermark that produced it).
    pub fn age_s(&self, watermark: Timestamp) -> Option<f64> {
        self.last_at.map(|at| (watermark.delta(at).max(0)) as f64)
    }
}

/// Health records for every light a streaming engine ever attempted,
/// in light-id order.
#[derive(Debug, Clone, Default)]
pub struct HealthRegistry {
    lights: BTreeMap<u32, LightHealth>,
}

impl HealthRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of lights tracked.
    pub fn len(&self) -> usize {
        self.lights.len()
    }

    /// Whether no light was ever attempted.
    pub fn is_empty(&self) -> bool {
        self.lights.is_empty()
    }

    /// One light's health record, if any round attempted it.
    pub fn get(&self, light: LightId) -> Option<&LightHealth> {
        self.lights.get(&light.0)
    }

    /// All records in ascending light-id order.
    pub fn iter(&self) -> impl Iterator<Item = &LightHealth> {
        self.lights.values()
    }

    /// A point-in-time copy of every record, light-id ascending — what
    /// the serving daemon publishes alongside each schedule snapshot.
    pub fn snapshot(&self) -> Vec<LightHealth> {
        self.lights.values().copied().collect()
    }

    /// Lights per grade as of their latest rounds:
    /// `[starved, sparse, adequate, rich]` (the bounded label set the
    /// grade gauges export).
    pub fn grade_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for h in self.lights.values() {
            let k = match h.grade {
                QualityGrade::Starved => 0,
                QualityGrade::Sparse => 1,
                QualityGrade::Adequate => 2,
                QualityGrade::Rich => 3,
            };
            counts[k] += 1;
        }
        counts
    }

    /// Folds one round's outcome for `light` into its record. `round`
    /// is the round counter *as of this round* (= the schedule-view
    /// version a success publishes under), `at` the round instant,
    /// `changes_total` the light's confirmed change count so far.
    pub fn record_round(
        &mut self,
        light: LightId,
        round: u64,
        at: Timestamp,
        result: &Result<LightSchedule, IdentifyError>,
        quality: &LightQuality,
        changes_total: u64,
    ) {
        let h = self.lights.entry(light.0).or_insert_with(|| LightHealth::new(light));
        h.attempts += 1;
        h.grade = quality.grade;
        h.observations = quality.observations;
        h.records_per_hour = quality.records_per_hour;
        h.changes = changes_total;
        match result {
            Ok(schedule) => {
                h.successes += 1;
                h.consecutive_failures = 0;
                h.snr = schedule.snr;
                h.cycle_s = schedule.cycle_s;
                h.last_version = round;
                h.last_at = Some(at);
            }
            Err(err) => {
                h.consecutive_failures += 1;
                h.failures.record(err);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::CycleError;

    fn quality(grade: QualityGrade) -> LightQuality {
        LightQuality {
            light: LightId(3),
            observations: 120,
            near_stop_observations: 100,
            distinct_taxis: 9,
            records_per_hour: 320.0,
            typical_interval_s: 18.0,
            stop_events: 14,
            grade,
        }
    }

    fn schedule() -> LightSchedule {
        LightSchedule {
            light: LightId(3),
            cycle_s: 96.0,
            red_s: 42.0,
            green_s: 54.0,
            red_start_s: 10.0,
            snr: 7.5,
            samples: 100,
        }
    }

    #[test]
    fn success_updates_confidence_and_freshness() {
        let mut reg = HealthRegistry::new();
        assert!(reg.is_empty());
        reg.record_round(
            LightId(3),
            4,
            Timestamp(1200),
            &Ok(schedule()),
            &quality(QualityGrade::Adequate),
            0,
        );
        let h = reg.get(LightId(3)).unwrap();
        assert!(h.identified());
        assert_eq!(h.attempts, 1);
        assert_eq!(h.successes, 1);
        assert_eq!(h.consecutive_failures, 0);
        assert_eq!(h.snr, 7.5);
        assert_eq!(h.cycle_s, 96.0);
        assert_eq!(h.last_version, 4);
        assert_eq!(h.age_s(Timestamp(1500)), Some(300.0));
        assert_eq!(h.age_s(Timestamp(1000)), Some(0.0), "age clamps at zero");
        assert_eq!(h.grade, QualityGrade::Adequate);
    }

    #[test]
    fn failures_bucket_by_reason_and_track_streaks() {
        let mut reg = HealthRegistry::new();
        let q = quality(QualityGrade::Sparse);
        let cycle_err = Err(IdentifyError::Cycle(CycleError::TooFewSamples { have: 3, need: 10 }));
        reg.record_round(LightId(3), 1, Timestamp(300), &cycle_err, &q, 0);
        reg.record_round(LightId(3), 2, Timestamp(600), &Err(IdentifyError::NoData), &q, 0);
        let h = reg.get(LightId(3)).unwrap();
        assert!(!h.identified());
        assert_eq!(h.attempts, 2);
        assert_eq!(h.consecutive_failures, 2);
        assert_eq!(h.failures.cycle, 1);
        assert_eq!(h.failures.no_data, 1);
        assert_eq!(h.failures.total(), 2);
        assert_eq!(h.age_s(Timestamp(900)), None);
        assert_eq!(h.snr, 0.0);

        // A success resets the streak but keeps the cumulative buckets.
        reg.record_round(LightId(3), 3, Timestamp(900), &Ok(schedule()), &q, 1);
        let h = reg.get(LightId(3)).unwrap();
        assert_eq!(h.consecutive_failures, 0);
        assert_eq!(h.failures.total(), 2);
        assert_eq!(h.changes, 1);
    }

    #[test]
    fn snapshot_and_grade_counts_are_ordered_and_bounded() {
        let mut reg = HealthRegistry::new();
        let s = schedule();
        reg.record_round(LightId(9), 1, Timestamp(0), &Ok(s), &quality(QualityGrade::Rich), 0);
        reg.record_round(LightId(2), 1, Timestamp(0), &Ok(s), &quality(QualityGrade::Rich), 0);
        reg.record_round(
            LightId(5),
            1,
            Timestamp(0),
            &Err(IdentifyError::NoData),
            &quality(QualityGrade::Starved),
            0,
        );
        let snap = reg.snapshot();
        let ids: Vec<u32> = snap.iter().map(|h| h.light.0).collect();
        assert_eq!(ids, vec![2, 5, 9]);
        assert_eq!(reg.grade_counts(), [1, 0, 0, 2]);
        assert_eq!(reg.len(), 3);
    }
}
