//! # taxilight-core
//!
//! Real-time traffic-light scheduling identification from low-frequency
//! taxi GPS traces — the primary contribution of He et al., *Exploiting
//! Real-Time Traffic Light Scheduling with Taxi Traces* (ICPP 2016),
//! implemented end to end:
//!
//! 1. [`preprocess`] — map matching (nearest heading-compatible segment,
//!    Fig. 5) and partitioning of records to their nearest approach light.
//! 2. [`cycle`] — cycle-length identification: spline-resample the sparse
//!    speed signal to 1 Hz, DFT, strongest in-band bin (Eqs. 1–2).
//! 3. [`enhance`] — intersection-based enhancement: mirror the
//!    perpendicular approach's speed about the intersection mean (Eq. 3)
//!    to densify sparse inputs.
//! 4. [`red`] — red-light duration from longest-stop statistics with the
//!    paper's two error filters and the border-interval classifier
//!    (Fig. 9).
//! 5. [`superpose`] — fold multiple cycles into one (Fig. 10).
//! 6. [`change_point`] — sliding-window moving-average minimum over the
//!    superposed cycle locates the red onset (Fig. 11).
//! 7. [`pipeline`] — the full per-light identifier; [`engine`] — the
//!    unified [`Identifier`] facade with deterministic sharded parallel
//!    execution (the paper notes per-light analysis "can be easily
//!    paralleled" after partitioning).
//! 8. [`monitor`] — scheduling-change identification by continuous 5-minute
//!    cycle re-estimation with outlier rejection and day-over-day
//!    correction (Fig. 12).
//! 9. [`evaluate`] — the error metrics of Figs. 13–14.
//! 10. [`view`] — [`ScheduleView`], the immutable versioned snapshot every
//!     schedule consumer (serving daemon, navsim, eval) queries instead of
//!     borrowing the mutable [`realtime::RealtimeIdentifier`].

#![warn(missing_docs)]

pub mod change_point;
pub mod config;
pub mod cycle;
pub mod engine;
pub mod enhance;
pub mod evaluate;
pub mod health;
pub mod monitor;
pub mod pipeline;
pub mod preprocess;
pub mod quality;
pub mod realtime;
pub mod red;
pub mod superpose;
pub mod view;
pub mod workspace;

pub use config::{ConfigError, CycleMethod, IdentifyConfig, IdentifyConfigBuilder};
pub use engine::{
    EngineStats, ExecMode, Identifier, IdentifyOutcome, IdentifyRequest, LightSelection,
};
pub use evaluate::{
    circular_error_s, compare, red_bin_error, ErrorSummary, ScheduleErrors, ScheduleTruth,
};
pub use health::{FailureCounts, HealthRegistry, LightHealth};
pub use pipeline::{IdentifyError, LightSchedule};
pub use preprocess::{LightObs, PartitionedTraces, Preprocessor};
pub use quality::{assess_all, grade_counts, LightQuality, QualityGrade};
pub use realtime::{RealtimeBuilder, RealtimeIdentifier};
pub use taxilight_signal::periodogram::SpectrumPath;
pub use view::ScheduleView;
pub use workspace::{IdentifyWorkspace, StageTimings};
