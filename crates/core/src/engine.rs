//! The unified identification engine — one facade, serial and sharded
//! execution, bit-identical results.
//!
//! [`Identifier`] replaces the four historical entry points
//! (`identify_light`, `identify_light_with_cycle`, `identify_all`,
//! `RealtimeIdentifier::try_identify`) with a single call driven by an
//! [`IdentifyRequest`]: which lights, an optional externally known cycle
//! length, and an [`ExecMode`].
//!
//! ## Sharded execution
//!
//! City-scale identification is embarrassingly parallel after partitioning
//! (paper Sec. IV): every light's `preprocess → interpolate → DFT → red →
//! superpose → change` chain reads shared immutable state (`&RoadNetwork`,
//! `&PartitionedTraces`) and writes only its own result. The engine
//! exploits that by
//!
//! 1. assigning each light to a **deterministic shard** via an FNV-1a hash
//!    of its [`LightId`] — stable across runs, machines, and thread counts;
//! 2. distributing shards round-robin over a pool of scoped worker
//!    threads, each accumulating results in **per-shard vectors** so no
//!    lock sits on the hot path;
//! 3. merging the per-shard vectors and sorting by `LightId` — the same
//!    ascending order the serial path produces.
//!
//! Because the per-light work is a pure function and every reduction is
//! order-independent, the sharded output is **bit-identical** to the
//! serial one for any shard/thread count — pinned by the
//! `engine_equivalence` property tests. The intersection-consensus pass is
//! a cross-light step, so it runs serially *after* the merge in both
//! modes.
//!
//! ## Workspaces
//!
//! Each worker thread owns one [`IdentifyWorkspace`] — FFT plan cache plus
//! every scratch buffer of the per-light pipeline — for the whole run, so
//! the hot path is allocation-free and lock-free in steady state. The
//! engine keeps a checkout pool ([`std::sync::Mutex`]-guarded, touched
//! only at run start/end, never per light) so plans and grown buffers
//! survive across runs — the property the realtime engine's round loop
//! relies on.

use std::sync::Mutex;

use taxilight_obs::{event, span};

use crate::config::{ConfigError, IdentifyConfig};
use crate::pipeline::{
    identify_all_seq, identify_light_impl, identify_light_with_cycle_impl, IdentifyError,
    LightSchedule,
};
use crate::preprocess::PartitionedTraces;
use crate::workspace::{IdentifyWorkspace, StageTimings};
use taxilight_roadnet::graph::{LightId, RoadNetwork};
use taxilight_signal::plan::PlanCacheStats;
use taxilight_trace::time::Timestamp;

/// How the engine schedules per-light work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One light after another, ascending `LightId` — the reference path.
    Serial,
    /// Deterministic shards spread over a thread pool. `0` means "auto"
    /// for either knob: shards defaults to `4 × threads`, threads to the
    /// machine's available parallelism. Results are bit-identical to
    /// [`ExecMode::Serial`] regardless of either value.
    Sharded {
        /// Number of hash shards (`0` = auto).
        shards: usize,
        /// Number of worker threads (`0` = auto).
        threads: usize,
    },
}

impl ExecMode {
    /// The auto-sized sharded mode — the default execution path.
    pub const AUTO: ExecMode = ExecMode::Sharded { shards: 0, threads: 0 };
}

impl Default for ExecMode {
    fn default() -> Self {
        ExecMode::AUTO
    }
}

/// Which lights a request targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LightSelection {
    /// Every light with observations in the window (ascending id), like
    /// the historical `identify_all`.
    All,
    /// A single light (reported even when it has no data).
    One(LightId),
    /// An explicit set; duplicates are removed, output is ascending.
    Many(Vec<LightId>),
}

/// One identification request: the lights, the instant, the knowledge and
/// the execution shape.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentifyRequest {
    /// Evaluation instant; the analysed window is `[at − window_s, at)`.
    pub at: Timestamp,
    /// Target lights.
    pub lights: LightSelection,
    /// Externally known cycle length (e.g. intersection consensus or a
    /// monitoring history): skips stage 1 and derives red + phase from it.
    pub known_cycle: Option<f64>,
    /// Execution mode. Never changes results, only wall-clock.
    pub exec: ExecMode,
    /// Overrides [`IdentifyConfig::intersection_consensus`] for this
    /// request. `None` keeps the config value for [`LightSelection::All`]
    /// and disables consensus for `One`/`Many` (matching the historical
    /// per-light entry points, which never ran the cross-light pass).
    pub consensus: Option<bool>,
}

impl IdentifyRequest {
    /// Identify every light with data at `at`.
    pub fn all(at: Timestamp) -> Self {
        IdentifyRequest {
            at,
            lights: LightSelection::All,
            known_cycle: None,
            exec: ExecMode::default(),
            consensus: None,
        }
    }

    /// Identify one light at `at`.
    pub fn one(at: Timestamp, light: LightId) -> Self {
        IdentifyRequest { lights: LightSelection::One(light), ..IdentifyRequest::all(at) }
    }

    /// Identify an explicit set of lights at `at`.
    pub fn many(at: Timestamp, lights: Vec<LightId>) -> Self {
        IdentifyRequest { lights: LightSelection::Many(lights), ..IdentifyRequest::all(at) }
    }

    /// Pin the cycle length instead of estimating it (stage 1 skipped).
    pub fn with_known_cycle(mut self, cycle_s: f64) -> Self {
        self.known_cycle = Some(cycle_s);
        self
    }

    /// Force serial execution.
    pub fn serial(mut self) -> Self {
        self.exec = ExecMode::Serial;
        self
    }

    /// Force sharded execution with explicit knobs (`0` = auto).
    pub fn sharded(mut self, shards: usize, threads: usize) -> Self {
        self.exec = ExecMode::Sharded { shards, threads };
        self
    }

    /// Explicitly enable or disable the intersection-consensus pass.
    pub fn with_consensus(mut self, on: bool) -> Self {
        self.consensus = Some(on);
        self
    }
}

/// What one engine run did, beyond the per-light results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineStats {
    /// Lights processed (requested lights for `One`/`Many`, lights with
    /// data for `All`).
    pub lights: usize,
    /// Hash shards actually used (1 for serial execution).
    pub shards: usize,
    /// Worker threads actually used (1 for serial execution).
    pub threads: usize,
    /// Whether the intersection-consensus pass ran.
    pub consensus_applied: bool,
    /// Per-stage wall-clock summed over every worker (CPU seconds, so the
    /// total can exceed the run's wall-clock under parallel execution).
    pub stage_timings: StageTimings,
    /// FFT plan-cache hits/misses summed over every worker's workspace.
    pub plan_cache: PlanCacheStats,
}

/// Per-light outcomes: `(light, schedule-or-error)` pairs.
type LightResults = Vec<(LightId, Result<LightSchedule, IdentifyError>)>;

/// Typed result of [`Identifier::run`]: per-light outcomes in ascending
/// `LightId` order plus run statistics.
#[derive(Debug, Clone)]
pub struct IdentifyOutcome {
    /// `(light, schedule-or-error)` in ascending `LightId` order.
    pub results: Vec<(LightId, Result<LightSchedule, IdentifyError>)>,
    /// Execution statistics.
    pub stats: EngineStats,
}

impl IdentifyOutcome {
    /// The schedule of `light`, if identified.
    pub fn schedule(&self, light: LightId) -> Option<&LightSchedule> {
        self.results.iter().find(|(l, _)| *l == light).and_then(|(_, r)| r.as_ref().ok())
    }

    /// Consumes a single-light outcome (a [`LightSelection::One`] request)
    /// into its result.
    ///
    /// # Panics
    /// Panics when the outcome holds zero or several lights.
    pub fn into_single(mut self) -> Result<LightSchedule, IdentifyError> {
        assert_eq!(self.results.len(), 1, "into_single on a {}-light outcome", self.results.len());
        self.results.pop().expect("one result").1
    }

    /// Successfully identified `(light, schedule)` pairs, ascending.
    pub fn schedules(&self) -> impl Iterator<Item = (LightId, &LightSchedule)> {
        self.results.iter().filter_map(|(l, r)| r.as_ref().ok().map(|s| (*l, s)))
    }

    /// Number of successfully identified lights.
    pub fn ok_count(&self) -> usize {
        self.results.iter().filter(|(_, r)| r.is_ok()).count()
    }
}

/// Stable FNV-1a 64-bit hash of a light id — the shard assignment must not
/// depend on `DefaultHasher`'s unspecified, build-dependent output.
pub fn shard_of(light: LightId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for b in light.0.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    (h % shards as u64) as usize
}

/// The unified identification facade — the one true execution path for
/// batch identification (the realtime engine routes through it too).
pub struct Identifier<'a> {
    net: &'a RoadNetwork,
    cfg: IdentifyConfig,
    /// Idle workspaces kept across runs so FFT plans and grown buffers
    /// amortize. Locked only at run start (checkout) and run end
    /// (checkin); each worker owns its workspace exclusively in between.
    pool: Mutex<Vec<IdentifyWorkspace>>,
}

impl<'a> Identifier<'a> {
    /// Creates an engine over `net`, validating `cfg` up front so
    /// degenerate values surface here instead of deep inside the pipeline.
    pub fn new(net: &'a RoadNetwork, cfg: IdentifyConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(Identifier { net, cfg, pool: Mutex::new(Vec::new()) })
    }

    /// Creates an engine with the paper-default configuration.
    pub fn with_defaults(net: &'a RoadNetwork) -> Self {
        Identifier { net, cfg: IdentifyConfig::default(), pool: Mutex::new(Vec::new()) }
    }

    /// Skips validation — only for the deprecated shims, which predate
    /// config validation and must keep their exact historical behaviour.
    pub(crate) fn new_unchecked(net: &'a RoadNetwork, cfg: IdentifyConfig) -> Self {
        Identifier { net, cfg, pool: Mutex::new(Vec::new()) }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &IdentifyConfig {
        &self.cfg
    }

    /// Pops a pooled workspace (or builds one) with fresh run counters.
    fn checkout(&self) -> IdentifyWorkspace {
        let mut pool = self.pool.lock().expect("workspace pool poisoned");
        let pooled = !pool.is_empty();
        let mut ws = pool.pop().unwrap_or_default();
        drop(pool);
        event!("workspace.checkout", pooled = pooled);
        ws.reset_run_stats();
        ws
    }

    /// Returns a workspace to the pool, keeping its plans and buffers.
    fn checkin(&self, ws: IdentifyWorkspace) {
        event!(
            "workspace.checkin",
            plan_hits = ws.plan_stats().hits(),
            plan_misses = ws.plan_stats().misses()
        );
        self.pool.lock().expect("workspace pool poisoned").push(ws);
    }

    /// Runs one identification request against pre-partitioned traces.
    pub fn run(&self, parts: &PartitionedTraces, req: &IdentifyRequest) -> IdentifyOutcome {
        // Resolve the target set in ascending id order (the serial
        // reference order, and the order the output is pinned to).
        let lights: Vec<LightId> = match &req.lights {
            LightSelection::All => parts.lights_with_data(),
            LightSelection::One(l) => vec![*l],
            LightSelection::Many(ls) => {
                let mut ls = ls.clone();
                ls.sort_by_key(|l| l.0);
                ls.dedup();
                ls
            }
        };

        let _run_span = span!("engine.run", lights = lights.len());
        let (results, shards, threads, mut workspaces) = match req.exec {
            ExecMode::Serial => {
                let mut ws = self.checkout();
                let results = self.run_serial(parts, &lights, req, &mut ws);
                (results, 1, 1, vec![ws])
            }
            ExecMode::Sharded { shards, threads } => {
                let threads = if threads == 0 {
                    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
                } else {
                    threads
                };
                let shards = if shards == 0 { (threads * 4).max(1) } else { shards };
                let (results, workspaces) = self.run_sharded(parts, &lights, req, shards, threads);
                (results, shards, threads, workspaces)
            }
        };

        // The consensus pass compares estimates *across* lights of one
        // intersection, so it runs serially after the merge in both modes
        // — identical inputs, identical outputs, bit-identical overall.
        let consensus_applies = req.known_cycle.is_none()
            && req.consensus.unwrap_or(match req.lights {
                LightSelection::All => self.cfg.intersection_consensus,
                _ => false,
            });
        let mut results = results;
        if consensus_applies {
            let _consensus_span = span!("engine.consensus", lights = results.len());
            crate::pipeline::reconcile_intersections(
                &mut results,
                parts,
                self.net,
                req.at,
                &self.cfg,
                &mut workspaces[0],
            );
        }

        let merge_span = span!("engine.merge", workspaces = workspaces.len());
        let mut stage_timings = StageTimings::default();
        let mut plan_cache = PlanCacheStats::default();
        for ws in workspaces {
            stage_timings.merge(&ws.timings());
            plan_cache.merge(ws.plan_stats());
            self.checkin(ws);
        }
        drop(merge_span);

        IdentifyOutcome {
            stats: EngineStats {
                lights: results.len(),
                shards,
                threads,
                consensus_applied: consensus_applies,
                stage_timings,
                plan_cache,
            },
            results,
        }
    }

    /// Stage pipeline for one light, honouring a pinned cycle.
    fn identify_one(
        &self,
        parts: &PartitionedTraces,
        light: LightId,
        req: &IdentifyRequest,
        ws: &mut IdentifyWorkspace,
    ) -> Result<LightSchedule, IdentifyError> {
        match req.known_cycle {
            Some(cycle_s) => {
                identify_light_with_cycle_impl(parts, light, req.at, &self.cfg, cycle_s, ws)
            }
            None => identify_light_impl(parts, self.net, light, req.at, &self.cfg, ws),
        }
    }

    fn run_serial(
        &self,
        parts: &PartitionedTraces,
        lights: &[LightId],
        req: &IdentifyRequest,
        ws: &mut IdentifyWorkspace,
    ) -> LightResults {
        lights.iter().map(|&l| (l, self.identify_one(parts, l, req, ws))).collect()
    }

    fn run_sharded(
        &self,
        parts: &PartitionedTraces,
        lights: &[LightId],
        req: &IdentifyRequest,
        shards: usize,
        threads: usize,
    ) -> (LightResults, Vec<IdentifyWorkspace>) {
        // Deterministic shard assignment: lights stay in ascending order
        // inside each shard (stable partition of an ascending input).
        let mut buckets: Vec<Vec<LightId>> = vec![Vec::new(); shards];
        for &l in lights {
            buckets[shard_of(l, shards)].push(l);
        }

        let workers = threads.min(shards).max(1);
        if workers <= 1 {
            // Degenerate pool: process shards in order on this thread.
            let mut ws = self.checkout();
            let mut merged: LightResults = Vec::new();
            for (shard_idx, shard) in buckets.iter().enumerate() {
                let _shard_span = span!("engine.shard", shard = shard_idx, lights = shard.len());
                for &l in shard {
                    merged.push((l, self.identify_one(parts, l, req, &mut ws)));
                }
            }
            merged.sort_by_key(|(l, _)| l.0);
            return (merged, vec![ws]);
        }

        // Round-robin shards over scoped workers; each worker owns its
        // workspace and its output vector for the whole run (per-worker
        // state, no shared locks on the per-light path).
        let wss: Vec<IdentifyWorkspace> = (0..workers).map(|_| self.checkout()).collect();
        let per_worker: Vec<(LightResults, IdentifyWorkspace)> = std::thread::scope(|scope| {
            let buckets = &buckets;
            // The intermediate collect is load-bearing: every worker must
            // be spawned before the first join, or the laps would run one
            // worker at a time.
            #[allow(clippy::needless_collect)]
            let handles: Vec<_> = wss
                .into_iter()
                .enumerate()
                .map(|(w, mut ws)| {
                    scope.spawn(move || {
                        taxilight_obs::set_track_name(|| format!("engine-worker-{w}"));
                        let out: Vec<_> = buckets
                            .iter()
                            .enumerate()
                            .skip(w)
                            .step_by(workers)
                            .flat_map(|(shard_idx, shard)| {
                                let _shard_span =
                                    span!("engine.shard", shard = shard_idx, lights = shard.len());
                                shard
                                    .iter()
                                    .map(|&l| (l, self.identify_one(parts, l, req, &mut ws)))
                                    .collect::<Vec<_>>()
                            })
                            .collect();
                        (out, ws)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("engine worker panicked")).collect()
        });

        let mut merged = Vec::new();
        let mut used = Vec::with_capacity(workers);
        for (out, ws) in per_worker {
            merged.extend(out);
            used.push(ws);
        }
        // Merge in LightId order — the serial reference order.
        merged.sort_by_key(|(l, _)| l.0);
        (merged, used)
    }
}

/// Sequential reference run over all lights with data, without consensus —
/// used by the equivalence tests to cross-check [`Identifier::run`]
/// against the pre-engine semantics.
pub fn reference_serial(
    parts: &PartitionedTraces,
    net: &RoadNetwork,
    at: Timestamp,
    cfg: &IdentifyConfig,
) -> Vec<(LightId, Result<LightSchedule, IdentifyError>)> {
    identify_all_seq(parts, net, at, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        // Pinned values: the FNV-1a schedule digest in BENCH_throughput
        // depends on this exact hash; a silent change must fail loudly.
        assert_eq!(shard_of(LightId(0), 8), 5);
        assert_eq!(shard_of(LightId(1), 8), 4);
        assert_eq!(shard_of(LightId(42), 8), 7);
        for id in 0..1000 {
            for shards in [1, 2, 3, 7, 16] {
                assert!(shard_of(LightId(id), shards) < shards);
            }
        }
    }

    #[test]
    fn shard_assignment_spreads_lights() {
        // 1000 sequential ids over 8 shards: no shard should be empty or
        // hold more than half the lights.
        let mut counts = [0usize; 8];
        for id in 0..1000 {
            counts[shard_of(LightId(id), 8)] += 1;
        }
        for c in counts {
            assert!(c > 0 && c < 500, "skewed shard: {counts:?}");
        }
    }

    #[test]
    fn exec_mode_default_is_auto_sharded() {
        assert_eq!(ExecMode::default(), ExecMode::Sharded { shards: 0, threads: 0 });
    }

    #[test]
    fn request_builders_compose() {
        let at = Timestamp(1000);
        let r = IdentifyRequest::all(at).serial().with_consensus(false);
        assert_eq!(r.exec, ExecMode::Serial);
        assert_eq!(r.consensus, Some(false));
        let r = IdentifyRequest::one(at, LightId(3)).with_known_cycle(90.0);
        assert_eq!(r.known_cycle, Some(90.0));
        assert_eq!(r.lights, LightSelection::One(LightId(3)));
        let r = IdentifyRequest::many(at, vec![LightId(2), LightId(1)]).sharded(5, 2);
        assert_eq!(r.exec, ExecMode::Sharded { shards: 5, threads: 2 });
    }

    #[test]
    fn identifier_rejects_degenerate_config() {
        let city = taxilight_roadnet::generators::grid_city(
            &taxilight_roadnet::generators::GridConfig::default(),
        );
        let bad = IdentifyConfig { window_s: 0, ..IdentifyConfig::default() };
        assert!(Identifier::new(&city.net, bad).is_err());
        assert!(Identifier::new(&city.net, IdentifyConfig::default()).is_ok());
    }
}
