//! Scheduling-change identification (paper Sec. VII, Fig. 12).
//!
//! The system re-estimates the cycle length every 5 minutes. The resulting
//! series has obvious outliers (the frequency-domain estimator is "either
//! very accurate, or has notable errors") which a median filter removes;
//! a *persistent* level shift in the cleaned series is a scheduling change
//! (peak/off-peak programme switch). Because "this traffic light uses
//! similar scheduling policy at the same time of different day", a
//! historical day-over-day median corrects the current estimate.

use taxilight_trace::time::Timestamp;

/// One monitoring sample: a periodic cycle re-estimate (or a failed one).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorSample {
    /// When the estimate was made.
    pub at: Timestamp,
    /// The cycle estimate; `None` when identification failed in this slot.
    pub cycle_s: Option<f64>,
}

/// A detected scheduling change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChangeEvent {
    /// First sample time at which the new level holds.
    pub at: Timestamp,
    /// Stable cycle before the change, seconds.
    pub from_cycle_s: f64,
    /// Stable cycle after the change, seconds.
    pub to_cycle_s: f64,
}

/// Continuous monitor for one light.
#[derive(Debug, Clone)]
pub struct ScheduleMonitor {
    /// Nominal re-estimation period (the paper's 5 minutes).
    pub interval_s: u32,
    history: Vec<MonitorSample>,
}

impl Default for ScheduleMonitor {
    fn default() -> Self {
        ScheduleMonitor::new(300)
    }
}

impl ScheduleMonitor {
    /// Creates a monitor with the given re-estimation period.
    pub fn new(interval_s: u32) -> Self {
        ScheduleMonitor { interval_s, history: Vec::new() }
    }

    /// Appends a sample (samples must arrive in time order).
    ///
    /// # Panics
    /// Panics when `at` is earlier than the previous sample.
    pub fn push(&mut self, at: Timestamp, cycle_s: Option<f64>) {
        if let Some(last) = self.history.last() {
            assert!(at >= last.at, "monitor samples must be time-ordered");
        }
        self.history.push(MonitorSample { at, cycle_s });
    }

    /// The raw history.
    pub fn history(&self) -> &[MonitorSample] {
        &self.history
    }

    /// Median-of-`k` filtered history: each valid sample is replaced by the
    /// median of the valid samples in a centred window of `k` (odd)
    /// samples; failed slots stay `None`. Removes Fig. 12's isolated
    /// outliers without smearing genuine level shifts.
    ///
    /// # Panics
    /// Panics when `k` is even or zero.
    pub fn smoothed(&self, k: usize) -> Vec<MonitorSample> {
        assert!(k % 2 == 1, "median window must be odd");
        let half = k / 2;
        let n = self.history.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            let mut window: Vec<f64> =
                self.history[lo..hi].iter().filter_map(|s| s.cycle_s).collect();
            let smoothed = if window.is_empty() || self.history[i].cycle_s.is_none() {
                None
            } else {
                window.sort_by(f64::total_cmp);
                Some(window[window.len() / 2])
            };
            out.push(MonitorSample { at: self.history[i].at, cycle_s: smoothed });
        }
        out
    }

    /// Detects level shifts in the smoothed series: a change is emitted
    /// when `persistence` consecutive valid samples each deviate from the
    /// current stable level by more than `tolerance_s`.
    pub fn detect_changes(&self, tolerance_s: f64, persistence: usize) -> Vec<ChangeEvent> {
        let persistence = persistence.max(1);
        let smoothed = self.smoothed(5);
        let valid: Vec<(Timestamp, f64)> =
            smoothed.iter().filter_map(|s| s.cycle_s.map(|c| (s.at, c))).collect();
        let mut events = Vec::new();
        let Some(&(_, first)) = valid.first() else {
            return events;
        };
        let mut level = first;
        let mut deviation_run: Vec<(Timestamp, f64)> = Vec::new();
        for &(at, c) in &valid[1..] {
            if (c - level).abs() > tolerance_s {
                deviation_run.push((at, c));
                if deviation_run.len() >= persistence {
                    // Confirmed change: new level = median of the run.
                    let mut run: Vec<f64> = deviation_run.iter().map(|p| p.1).collect();
                    run.sort_by(f64::total_cmp);
                    let new_level = run[run.len() / 2];
                    events.push(ChangeEvent {
                        at: deviation_run[0].0,
                        from_cycle_s: level,
                        to_cycle_s: new_level,
                    });
                    level = new_level;
                    deviation_run.clear();
                }
            } else {
                deviation_run.clear();
            }
        }
        events
    }

    /// Historical correction: the median cycle across all days at the given
    /// time of day (± half an interval). `None` when no history covers that
    /// slot.
    pub fn historical_cycle(&self, seconds_of_day: u32) -> Option<f64> {
        let half = (self.interval_s / 2) as i64;
        let target = seconds_of_day as i64;
        let mut matches: Vec<f64> = self
            .history
            .iter()
            .filter(|s| {
                let sod = s.at.seconds_of_day() as i64;
                let d = (sod - target).rem_euclid(86_400);
                d.min(86_400 - d) <= half
            })
            .filter_map(|s| s.cycle_s)
            .collect();
        if matches.is_empty() {
            return None;
        }
        matches.sort_by(f64::total_cmp);
        Some(matches[matches.len() / 2])
    }

    /// Corrected estimate for the latest sample: when the current estimate
    /// deviates from the historical median at this time of day by more than
    /// `tolerance_s` *and* history exists, the historical value wins. This
    /// is the paper's "utilize historical traffic light scheduling to
    /// correct the identification of current scheduling".
    pub fn corrected_latest(&self, tolerance_s: f64) -> Option<f64> {
        let last = self.history.last()?;
        let current = last.cycle_s;
        let historical = self.historical_cycle(last.at.seconds_of_day());
        match (current, historical) {
            (Some(c), Some(h)) if (c - h).abs() > tolerance_s => Some(h),
            (Some(c), _) => Some(c),
            (None, h) => h,
        }
    }
}

/// A bank of per-light monitors, fed directly from [`Identifier`] sweep
/// results — the "system keeps on monitoring the traffic light" loop of
/// the paper's Fig. 4 at city scale.
///
/// [`Identifier`]: crate::engine::Identifier
#[derive(Debug, Default)]
pub struct MonitorBank {
    interval_s: u32,
    monitors: std::collections::HashMap<u32, ScheduleMonitor>,
}

impl MonitorBank {
    /// Creates a bank whose monitors use the given re-estimation period.
    pub fn new(interval_s: u32) -> Self {
        MonitorBank { interval_s, monitors: std::collections::HashMap::new() }
    }

    /// Records one identification round: an estimate (or failure) per
    /// light at time `at`.
    pub fn record_round(
        &mut self,
        at: Timestamp,
        results: &[(
            taxilight_roadnet::graph::LightId,
            Result<crate::pipeline::LightSchedule, crate::pipeline::IdentifyError>,
        )],
    ) {
        for (light, result) in results {
            self.monitors
                .entry(light.0)
                .or_insert_with(|| ScheduleMonitor::new(self.interval_s))
                .push(at, result.as_ref().ok().map(|e| e.cycle_s));
        }
    }

    /// The monitor for one light, if it has ever reported.
    pub fn monitor(&self, light: taxilight_roadnet::graph::LightId) -> Option<&ScheduleMonitor> {
        self.monitors.get(&light.0)
    }

    /// All lights with detected scheduling changes, with their events.
    pub fn all_changes(
        &self,
        tolerance_s: f64,
        persistence: usize,
    ) -> Vec<(taxilight_roadnet::graph::LightId, Vec<ChangeEvent>)> {
        let mut out: Vec<_> = self
            .monitors
            .iter()
            .filter_map(|(&id, m)| {
                let events = m.detect_changes(tolerance_s, persistence);
                (!events.is_empty()).then_some((taxilight_roadnet::graph::LightId(id), events))
            })
            .collect();
        out.sort_by_key(|(l, _)| *l);
        out
    }

    /// Number of monitored lights.
    pub fn len(&self) -> usize {
        self.monitors.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(day: u8, sod: i64) -> Timestamp {
        Timestamp::civil(2014, 5, 21 + day, 0, 0, 0).offset(sod)
    }

    /// Fills a monitor with a daily pattern: 90 s off-peak, 140 s in
    /// 7–9 h and 17–19 h, sampled every 5 min, with outliers injected.
    fn three_day_monitor() -> ScheduleMonitor {
        let mut m = ScheduleMonitor::default();
        for day in 0..3u8 {
            for slot in 0..(86_400 / 300) {
                let sod = slot * 300;
                let hour = sod / 3600;
                let peak = (7..9).contains(&hour) || (17..19).contains(&hour);
                let mut cycle = if peak { 140.0 } else { 90.0 };
                // Deterministic outliers: every 37th slot is wildly wrong
                // (the frequency method's failure mode).
                if slot % 37 == 5 {
                    cycle = 260.0;
                }
                // Every 53rd slot fails entirely.
                let value = if slot % 53 == 11 { None } else { Some(cycle) };
                m.push(t(day, sod as i64), value);
            }
        }
        m
    }

    #[test]
    fn push_requires_time_order() {
        let mut m = ScheduleMonitor::default();
        m.push(Timestamp(100), Some(90.0));
        m.push(Timestamp(100), Some(90.0)); // equal is fine
        let result = std::panic::catch_unwind(move || {
            m.push(Timestamp(50), Some(90.0));
        });
        assert!(result.is_err());
    }

    #[test]
    fn smoothing_removes_isolated_outliers() {
        let m = three_day_monitor();
        let smoothed = m.smoothed(5);
        // No smoothed valid value should be near the 260 s outlier level.
        for s in &smoothed {
            if let Some(c) = s.cycle_s {
                assert!(c < 200.0, "outlier survived smoothing: {c}");
            }
        }
        // Failed slots stay None.
        let raw_none = m.history().iter().filter(|s| s.cycle_s.is_none()).count();
        let smooth_none = smoothed.iter().filter(|s| s.cycle_s.is_none()).count();
        assert_eq!(raw_none, smooth_none);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn smoothing_rejects_even_window() {
        three_day_monitor().smoothed(4);
    }

    #[test]
    fn detects_the_daily_program_switches() {
        let m = three_day_monitor();
        let events = m.detect_changes(20.0, 3);
        // 3 days × 4 switches (off→peak, peak→off, twice a day).
        assert_eq!(events.len(), 12, "events: {events:?}");
        // Alternating directions.
        for (k, e) in events.iter().enumerate() {
            if k % 2 == 0 {
                assert!(e.to_cycle_s > e.from_cycle_s, "event {k} should rise");
            } else {
                assert!(e.to_cycle_s < e.from_cycle_s, "event {k} should fall");
            }
            assert!((e.from_cycle_s - e.to_cycle_s).abs() > 20.0);
        }
        // First morning switch lands near 07:00 on day one.
        let first = events[0].at;
        let sod = first.seconds_of_day();
        assert!((sod as i64 - 7 * 3600).abs() <= 900, "first switch at {sod}s of day");
    }

    #[test]
    fn no_false_changes_on_stable_schedule() {
        let mut m = ScheduleMonitor::default();
        for slot in 0..200 {
            // Static 106 s light with small estimation jitter and outliers.
            let jitter = ((slot * 7) % 5) as f64 - 2.0;
            let cycle = if slot % 31 == 3 { 230.0 } else { 106.0 + jitter };
            m.push(Timestamp(slot as i64 * 300), Some(cycle));
        }
        assert!(m.detect_changes(20.0, 3).is_empty());
    }

    #[test]
    fn historical_cycle_uses_same_time_of_day() {
        let m = three_day_monitor();
        // 08:00 is peak on every day.
        assert_eq!(m.historical_cycle(8 * 3600), Some(140.0));
        // 12:00 is off-peak.
        assert_eq!(m.historical_cycle(12 * 3600), Some(90.0));
        // Empty monitor.
        assert_eq!(ScheduleMonitor::default().historical_cycle(0), None);
    }

    #[test]
    fn corrected_latest_overrides_outliers() {
        let mut m = three_day_monitor();
        // Append a grossly wrong estimate at 12:00 on day 3.
        m.push(t(3, 12 * 3600), Some(250.0));
        assert_eq!(m.corrected_latest(20.0), Some(90.0), "history must veto the outlier");
        // A failed latest estimate falls back to history.
        m.push(t(3, 12 * 3600 + 300), None);
        assert_eq!(m.corrected_latest(20.0), Some(90.0));
        // A consistent estimate passes through.
        m.push(t(3, 12 * 3600 + 600), Some(91.0));
        assert_eq!(m.corrected_latest(20.0), Some(91.0));
    }

    #[test]
    fn monitor_bank_tracks_many_lights() {
        use crate::pipeline::{IdentifyError, LightSchedule};
        use taxilight_roadnet::graph::LightId;
        let mut bank = MonitorBank::new(300);
        assert!(bank.is_empty());
        let est = |light: u32, cycle: f64| {
            (
                LightId(light),
                Ok::<_, IdentifyError>(LightSchedule {
                    light: LightId(light),
                    cycle_s: cycle,
                    red_s: cycle * 0.4,
                    green_s: cycle * 0.6,
                    red_start_s: 0.0,
                    snr: 3.0,
                    samples: 50,
                }),
            )
        };
        // Light 0 stays at 90 s; light 1 jumps to 150 s halfway.
        for k in 0..40i64 {
            let at = Timestamp(k * 300);
            let c1 = if k < 20 { 90.0 } else { 150.0 };
            let round = vec![est(0, 90.0), est(1, c1)];
            bank.record_round(at, &round);
        }
        assert_eq!(bank.len(), 2);
        assert!(bank.monitor(LightId(0)).is_some());
        assert!(bank.monitor(LightId(2)).is_none());
        let changes = bank.all_changes(20.0, 2);
        assert_eq!(changes.len(), 1, "{changes:?}");
        assert_eq!(changes[0].0, LightId(1));
        assert!((changes[0].1[0].to_cycle_s - 150.0).abs() < 1.0);
    }

    #[test]
    fn single_sample_history_detects_nothing() {
        let mut m = ScheduleMonitor::default();
        m.push(Timestamp(0), Some(96.0));
        assert!(m.detect_changes(20.0, 2).is_empty());
        assert_eq!(m.smoothed(5).len(), 1);
        assert_eq!(m.smoothed(5)[0].cycle_s, Some(96.0));
        assert_eq!(m.corrected_latest(20.0), Some(96.0));
        // And a single *failed* sample is equally quiet.
        let mut f = ScheduleMonitor::default();
        f.push(Timestamp(0), None);
        assert!(f.detect_changes(20.0, 2).is_empty());
        assert_eq!(f.corrected_latest(20.0), None);
    }

    #[test]
    fn identical_consecutive_schedules_never_flag_a_change() {
        let mut m = ScheduleMonitor::default();
        for k in 0..50i64 {
            m.push(Timestamp(k * 300), Some(120.0));
        }
        assert!(m.detect_changes(0.0, 1).is_empty(), "zero tolerance, exact repeats");
        assert!(m.detect_changes(20.0, 2).is_empty());
    }

    #[test]
    fn change_on_reidentification_boundary_is_attributed_to_it() {
        // The programme switches exactly at a re-identification instant:
        // every sample up to (and excluding) the boundary sees the old
        // cycle, the boundary sample itself already sees the new one.
        let boundary = 25i64;
        let mut m = ScheduleMonitor::default();
        for k in 0..50i64 {
            let cycle = if k < boundary { 90.0 } else { 140.0 };
            m.push(Timestamp(k * 300), Some(cycle));
        }
        let events = m.detect_changes(20.0, 2);
        assert_eq!(events.len(), 1, "{events:?}");
        let e = events[0];
        assert!((e.from_cycle_s - 90.0).abs() < 1.0);
        assert!((e.to_cycle_s - 140.0).abs() < 1.0);
        // The median-5 smoother can smear the onset by up to two slots;
        // the event must land within that halo of the true boundary.
        let err = (e.at.0 - boundary * 300).abs();
        assert!(err <= 2 * 300, "event at {:?}, boundary {}", e.at, boundary * 300);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn smoothed_preserves_shape(values in prop::collection::vec(
                prop::option::of(60.0f64..200.0), 1..80)) {
                let mut m = ScheduleMonitor::new(300);
                for (k, v) in values.iter().enumerate() {
                    m.push(Timestamp(k as i64 * 300), *v);
                }
                let smoothed = m.smoothed(5);
                prop_assert_eq!(smoothed.len(), values.len());
                for (raw, s) in values.iter().zip(&smoothed) {
                    prop_assert_eq!(raw.is_none(), s.cycle_s.is_none());
                }
            }

            #[test]
            fn constant_series_with_sparse_outliers_yields_no_changes(
                base in 60.0f64..200.0,
                outlier_seeds in prop::collection::btree_set(1usize..11, 0..4),
            ) {
                // Isolated outliers, spaced ≥5 slots apart and away from
                // the series boundary (the median-5 filter needs full
                // neighbourhoods; an outlier in the very first window can
                // legitimately poison the initial level — the detector's
                // documented warm-up sensitivity).
                let outlier_slots: std::collections::BTreeSet<usize> =
                    outlier_seeds.iter().map(|s| s * 5).collect();
                let mut m = ScheduleMonitor::new(300);
                for k in 0..60usize {
                    let v = if outlier_slots.contains(&k) { base * 3.0 } else { base };
                    m.push(Timestamp(k as i64 * 300), Some(v));
                }
                prop_assert!(m.detect_changes(base * 0.2, 3).is_empty());
            }

            #[test]
            fn historical_cycle_is_some_iff_slot_covered(hour in 0u32..24) {
                let mut m = ScheduleMonitor::new(600);
                // Cover only 06:00–12:00 for two days.
                for day in 0..2i64 {
                    for slot in 36..72i64 {
                        m.push(Timestamp(day * 86_400 + slot * 600), Some(100.0));
                    }
                }
                let covered = (6..12).contains(&hour);
                prop_assert_eq!(m.historical_cycle(hour * 3600).is_some(), covered,
                                "hour {}", hour);
            }
        }
    }

    #[test]
    fn day_over_day_levels_repeat() {
        // The Fig. 12 observation: the same time of different days shows
        // the same level.
        let m = three_day_monitor();
        let smoothed = m.smoothed(5);
        let at_sod = |day: u8, sod: i64| {
            smoothed.iter().find(|s| s.at == t(day, sod)).and_then(|s| s.cycle_s)
        };
        for sod in [2 * 3600i64, 8 * 3600, 15 * 3600, 18 * 3600] {
            let d0 = at_sod(0, sod);
            let d1 = at_sod(1, sod);
            let d2 = at_sod(2, sod);
            assert_eq!(d0, d1, "sod {sod}");
            assert_eq!(d1, d2, "sod {sod}");
        }
    }
}
