//! # taxilight
//!
//! Umbrella crate for the `taxilight` workspace — a from-scratch Rust
//! reproduction of **He, Zhang, Cao, Liu, Fan, Xu: "Exploiting Real-Time
//! Traffic Light Scheduling with Taxi Traces" (ICPP 2016)**.
//!
//! The system infers traffic-light schedules (cycle length, red duration,
//! signal change time, scheduling changes) purely from low-frequency taxi
//! GPS traces. This crate re-exports the workspace layers:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`trace`]  | `taxilight-trace`   | Table-I records, timestamps, geodesy, CSV, Fig. 2 statistics |
//! | [`signal`] | `taxilight-signal`  | FFT/DFT, splines, convolution, histograms |
//! | [`roadnet`]| `taxilight-roadnet` | road graph, map-matching index, city generators |
//! | [`sim`]    | `taxilight-sim`     | the Shenzhen-fleet stand-in: microscopic traffic + GPS channel |
//! | [`core`]   | `taxilight-core`    | the paper's identification pipeline |
//! | [`navsim`] | `taxilight-navsim`  | the Fig. 15/16 schedule-aware navigation demo |
//!
//! ## Quickstart
//!
//! ```
//! use taxilight::core::{Identifier, IdentifyConfig, IdentifyRequest, Preprocessor};
//! use taxilight::sim::small_city;
//!
//! // Simulate a small signalized city for 90 minutes…
//! let scenario = small_city(7, 60);
//! let (mut log, _fleet) = scenario.run(90 * 60);
//!
//! // …and identify every light's schedule from the taxi traces alone.
//! let pre = Preprocessor::new(&scenario.net, IdentifyConfig::default());
//! let (parts, _stats) = pre.preprocess(&mut log);
//! let at = scenario.sim_config.start.offset(90 * 60);
//! let engine = Identifier::with_defaults(&scenario.net);
//! let outcome = engine.run(&parts, &IdentifyRequest::all(at));
//! assert!(!outcome.results.is_empty());
//! ```

#![warn(missing_docs)]

pub use taxilight_core as core;
pub use taxilight_navsim as navsim;
pub use taxilight_roadnet as roadnet;
pub use taxilight_signal as signal;
pub use taxilight_sim as sim;
pub use taxilight_trace as trace;
