//! `taxilight` — command-line front end for the workspace.
//!
//! ```text
//! taxilight simulate --seed 7 --taxis 150 --minutes 90 \
//!     --traces traces.csv --network city.net [--truth]
//! taxilight stats    --traces traces.csv
//! taxilight identify --network city.net --traces traces.csv \
//!     [--at "2014-12-05 15:22:00"] [--window 3600]
//! ```
//!
//! `simulate` produces a Table-I CSV trace file plus the road network it
//! was driven on (and, with `--truth`, the ground-truth schedules for
//! comparison); `identify` runs the full paper pipeline on any such pair;
//! `stats` prints the Fig. 2 fleet statistics of a trace file.

use std::path::PathBuf;
use std::process::ExitCode;

use taxilight::core::{Identifier, IdentifyConfig, IdentifyRequest, Preprocessor};
use taxilight::roadnet::io::{load_network, save_network};
use taxilight::sim::paper_city;
use taxilight::trace::io::{read_trace_file, write_trace_file};
use taxilight::trace::stats::TraceStatistics;
use taxilight::trace::Timestamp;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let flags = match Flags::parse(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "simulate" => simulate(&flags),
        "stats" => stats(&flags),
        "identify" => identify(&flags),
        "quality" => quality(&flags),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "taxilight — traffic-light schedule identification from taxi traces

USAGE:
  taxilight simulate --traces <out.csv> --network <out.net>
                     [--seed N] [--taxis N] [--minutes N] [--start-hour H] [--truth]
  taxilight stats    --traces <in.csv>
  taxilight identify --network <in.net> --traces <in.csv>
                     [--at \"YYYY-MM-DD HH:mm:ss\"] [--window SECONDS]
  taxilight quality  --network <in.net> --traces <in.csv>";

/// Minimal `--key value` / `--flag` parser.
struct Flags {
    entries: Vec<(String, Option<String>)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut entries = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got '{}'", args[i]))?
                .to_string();
            let takes_value = !matches!(key.as_str(), "truth");
            if takes_value {
                let value =
                    args.get(i + 1).ok_or_else(|| format!("--{key} needs a value"))?.clone();
                entries.push((key, Some(value)));
                i += 2;
            } else {
                entries.push((key, None));
                i += 1;
            }
        }
        Ok(Flags { entries })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.entries.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, key: &str) -> bool {
        self.entries.iter().any(|(k, _)| k == key)
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("--{key} is required"))
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            Some(v) => v.parse().map_err(|_| format!("--{key}: cannot parse '{v}'")),
            None => Ok(default),
        }
    }
}

fn simulate(flags: &Flags) -> Result<(), String> {
    let traces: PathBuf = flags.required("traces")?.into();
    let network: PathBuf = flags.required("network")?.into();
    let seed: u64 = flags.num("seed", 7)?;
    let taxis: usize = flags.num("taxis", 150)?;
    let minutes: u64 = flags.num("minutes", 90)?;

    let start_hour: u8 = flags.num("start-hour", 9)?;
    if start_hour > 22 {
        return Err("--start-hour must be 0..=22".into());
    }

    let scenario = paper_city(seed, taxis);
    eprintln!(
        "simulating {} min from {:02}:00, {} taxis, {} lights…",
        minutes,
        start_hour,
        taxis,
        scenario.net.light_count()
    );
    let start = Timestamp::civil(2014, 5, 21, start_hour, 0, 0);
    let (log, fleet) = scenario.run_from(start, minutes * 60);
    let records = log.into_records();
    eprintln!("{} records", records.len());

    save_network(&scenario.net, &network).map_err(|e| e.to_string())?;
    write_trace_file(&traces, &records, &fleet).map_err(|e| e.to_string())?;
    eprintln!("wrote {} and {}", traces.display(), network.display());

    if flags.has("truth") {
        let at = start.offset((minutes * 60) as i64);
        println!("# ground truth at {at}");
        println!("# light cycle red offset");
        for light in scenario.net.lights() {
            let plan = scenario.signals.plan(light.id, at);
            println!("{} {} {} {}", light.id.0, plan.cycle_s, plan.red_s, plan.offset_s);
        }
    }
    Ok(())
}

fn stats(flags: &Flags) -> Result<(), String> {
    let traces: PathBuf = flags.required("traces")?.into();
    let (mut log, fleet, errors) = read_trace_file(&traces).map_err(|e| e.to_string())?;
    if !errors.is_empty() {
        eprintln!("warning: {} malformed lines skipped", errors.len());
    }
    let stats = TraceStatistics::compute(&mut log);
    println!("records:              {}", stats.record_count);
    println!("taxis:                {} ({} registered)", stats.taxi_count, fleet.len());
    println!("records/minute:       {:.1}", stats.records_per_minute);
    println!(
        "update interval:      mean {:.2} s, σ {:.2}",
        stats.interval.mean, stats.interval.stddev
    );
    println!("stationary pairs:     {:.1}%", 100.0 * stats.stationary_fraction);
    println!("moving distance:      mean {:.1} m", stats.moving_distance.mean);
    let (mu, sigma) = stats.speed_diff_normal;
    println!("speed-diff fit:       N({mu:.2}, {sigma:.1})");
    Ok(())
}

fn quality(flags: &Flags) -> Result<(), String> {
    let network: PathBuf = flags.required("network")?.into();
    let traces: PathBuf = flags.required("traces")?.into();
    let net = load_network(&network).map_err(|e| e.to_string())?.map_err(|e| e.to_string())?;
    let (mut log, _, _) = read_trace_file(&traces).map_err(|e| e.to_string())?;
    let (t0, t1) = log.time_range().ok_or("trace file is empty")?;
    let cfg = IdentifyConfig::default();
    let pre = Preprocessor::new(&net, cfg.clone());
    let (parts, _) = pre.preprocess(&mut log);
    println!(
        "{:>6} {:>8} {:>10} {:>8} {:>10} {:>8} {:>10}",
        "light", "obs", "near-stop", "taxis", "rec/h", "stops", "grade"
    );
    for q in taxilight::core::quality::assess_all(&parts, t0, t1.offset(1), &cfg) {
        println!(
            "{:>6} {:>8} {:>10} {:>8} {:>10.0} {:>8} {:>10}",
            q.light.0,
            q.observations,
            q.near_stop_observations,
            q.distinct_taxis,
            q.records_per_hour,
            q.stop_events,
            format!("{:?}", q.grade)
        );
    }
    Ok(())
}

fn identify(flags: &Flags) -> Result<(), String> {
    let network: PathBuf = flags.required("network")?.into();
    let traces: PathBuf = flags.required("traces")?.into();
    let net = load_network(&network).map_err(|e| e.to_string())?.map_err(|e| e.to_string())?;
    let (mut log, _fleet, errors) = read_trace_file(&traces).map_err(|e| e.to_string())?;
    if !errors.is_empty() {
        eprintln!("warning: {} malformed lines skipped", errors.len());
    }
    let (_, t_last) = log.time_range().ok_or("trace file is empty")?;

    let mut cfg = IdentifyConfig::default();
    cfg.window_s = flags.num("window", cfg.window_s)?;
    let at = match flags.get("at") {
        Some(s) => Timestamp::parse(s).map_err(|e| e.to_string())?,
        None => t_last.offset(1),
    };

    let pre = Preprocessor::new(&net, cfg.clone());
    let (parts, pstats) = pre.preprocess(&mut log);
    eprintln!(
        "preprocessed {} records: {} partitioned, {} unmatched, {} implausible",
        pstats.input, pstats.partitioned, pstats.unmatched, pstats.implausible
    );

    println!("# schedules identified at {at} (window {} s)", cfg.window_s);
    println!("# light cycle_s red_s green_s red_onset_phase snr samples");
    let engine = Identifier::new(&net, cfg).map_err(|e| e.to_string())?;
    let mut ok = 0;
    let mut failed = 0;
    for (light, result) in engine.run(&parts, &IdentifyRequest::all(at)).results {
        match result {
            Ok(s) => {
                ok += 1;
                println!(
                    "{} {:.1} {:.1} {:.1} {:.1} {:.2} {}",
                    light.0,
                    s.cycle_s,
                    s.red_s,
                    s.green_s,
                    s.red_start_mod_cycle(),
                    s.snr,
                    s.samples
                );
            }
            Err(e) => {
                failed += 1;
                println!("# {} failed: {e}", light.0);
            }
        }
    }
    eprintln!("{ok} lights identified, {failed} failed");
    Ok(())
}
